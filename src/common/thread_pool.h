/**
 * @file
 * Fixed-size worker pool used for parallel page compilation and the
 * parallel place-and-route engine, plus a process-wide thread budget.
 *
 * The PLD -O1 flow compiles independent pages concurrently (paper
 * Sec 6.2: "All the operators' compilations can be performed in
 * parallel"), and each page compile may itself parallelize its P&R
 * inner loops. The ThreadBudget keeps that nested parallelism
 * (pages x P&R threads) from oversubscribing the machine: every pool
 * leases its workers from one shared budget, so the total number of
 * busy threads stays near the hardware concurrency no matter how the
 * parallelism nests.
 */

#ifndef PLD_COMMON_THREAD_POOL_H
#define PLD_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pld {

/**
 * Simple work-queue thread pool. submit() enqueues a job; wait()
 * blocks until every submitted job has finished. Jobs may submit
 * further jobs into the same pool (nested parallelism); wait() covers
 * those too. The pool drains any still-queued work before joining its
 * workers on destruction.
 */
class ThreadPool
{
  public:
    /** Spawn @p num_workers threads (0 means hardware_concurrency). */
    explicit ThreadPool(unsigned num_workers = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job for execution on some worker. */
    void submit(std::function<void()> job);

    /** Block until all submitted jobs have completed. */
    void wait();

    /** Number of worker threads. */
    unsigned workerCount() const { return workers.size(); }

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mtx;
    std::condition_variable cvWork;
    std::condition_variable cvDone;
    unsigned active = 0;
    bool stopping = false;
};

/**
 * Process-wide parallelism budget shared by every pool in the
 * compiler. The budget starts at total() slots; components reserve
 * worker slots with acquire() and hand them back with release().
 *
 * Two reservation modes:
 *  - capped (acquire): grants at most what is free — used by "auto"
 *    thread counts so nested parallel stages degrade to serial
 *    instead of oversubscribing;
 *  - exact (acquireExact): grants the full request even when the
 *    budget is exhausted — used when the caller explicitly asked for
 *    N threads (benchmarks, tests) and must get them.
 *
 * Thread counts never affect results anywhere in the P&R engine (see
 * DESIGN.md "Parallel place-and-route"), so a capped grant only
 * changes wall time, never output.
 */
class ThreadBudget
{
  public:
    /** Total budget: PLD_THREADS env override, else hardware. */
    static unsigned total();

    /** Reserve up to @p want slots; returns the granted count. */
    static unsigned acquire(unsigned want);

    /** Reserve exactly @p want slots, even if over budget. */
    static unsigned acquireExact(unsigned want);

    /** Return @p n previously granted slots. */
    static void release(unsigned n);

    /** Currently unreserved slots (telemetry/tests). */
    static unsigned available();
};

/** RAII lease of thread-budget slots. */
class BudgetLease
{
  public:
    explicit BudgetLease(unsigned want, bool exact = false)
        : n(exact ? ThreadBudget::acquireExact(want)
                  : ThreadBudget::acquire(want))
    {
    }
    ~BudgetLease() { ThreadBudget::release(n); }

    BudgetLease(const BudgetLease &) = delete;
    BudgetLease &operator=(const BudgetLease &) = delete;

    /** Number of slots actually granted. */
    unsigned count() const { return n; }

  private:
    unsigned n;
};

} // namespace pld

#endif // PLD_COMMON_THREAD_POOL_H
