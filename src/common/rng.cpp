#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace pld {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    pld_assert(bound > 0, "Rng::below needs positive bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    pld_assert(lo <= hi, "Rng::range needs lo <= hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(below(span));
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::gaussian()
{
    if (haveSpare) {
        haveSpare = false;
        return spare;
    }
    double u, v, sq;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        sq = u * u + v * v;
    } while (sq >= 1.0 || sq == 0.0);
    double mul = std::sqrt(-2.0 * std::log(sq) / sq);
    spare = v * mul;
    haveSpare = true;
    return u * mul;
}

} // namespace pld
