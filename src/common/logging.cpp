#include "common/logging.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace pld {

namespace {

LogLevel globalLevel = LogLevel::Warn;

} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
informImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace pld
