#include "common/thread_pool.h"

namespace pld {

ThreadPool::ThreadPool(unsigned num_workers)
{
    if (num_workers == 0) {
        num_workers = std::thread::hardware_concurrency();
        if (num_workers == 0)
            num_workers = 4;
    }
    workers.reserve(num_workers);
    for (unsigned i = 0; i < num_workers; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        stopping = true;
    }
    cvWork.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        queue.push_back(std::move(job));
    }
    cvWork.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(mtx);
    cvDone.wait(lk, [this] { return queue.empty() && active == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(mtx);
            cvWork.wait(lk, [this] { return stopping || !queue.empty(); });
            if (stopping && queue.empty())
                return;
            job = std::move(queue.front());
            queue.pop_front();
            ++active;
        }
        job();
        {
            std::lock_guard<std::mutex> lk(mtx);
            --active;
            if (queue.empty() && active == 0)
                cvDone.notify_all();
        }
    }
}

} // namespace pld
