#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>

namespace pld {

ThreadPool::ThreadPool(unsigned num_workers)
{
    if (num_workers == 0) {
        num_workers = std::thread::hardware_concurrency();
        if (num_workers == 0)
            num_workers = 4;
    }
    workers.reserve(num_workers);
    for (unsigned i = 0; i < num_workers; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        stopping = true;
    }
    cvWork.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        queue.push_back(std::move(job));
    }
    cvWork.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(mtx);
    cvDone.wait(lk, [this] { return queue.empty() && active == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(mtx);
            cvWork.wait(lk, [this] { return stopping || !queue.empty(); });
            if (stopping && queue.empty())
                return;
            job = std::move(queue.front());
            queue.pop_front();
            ++active;
        }
        job();
        {
            std::lock_guard<std::mutex> lk(mtx);
            --active;
            if (queue.empty() && active == 0)
                cvDone.notify_all();
        }
    }
}

// ---- ThreadBudget ---------------------------------------------------

namespace {

unsigned
configuredTotal()
{
    if (const char *e = std::getenv("PLD_THREADS")) {
        long v = std::strtol(e, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 4;
}

/** Free slots; exact reservations may drive this negative. */
std::atomic<long long> &
freeSlots()
{
    static std::atomic<long long> slots{
        static_cast<long long>(ThreadBudget::total())};
    return slots;
}

} // namespace

unsigned
ThreadBudget::total()
{
    static unsigned t = configuredTotal();
    return t;
}

unsigned
ThreadBudget::acquire(unsigned want)
{
    if (want == 0)
        return 0;
    auto &slots = freeSlots();
    long long cur = slots.load(std::memory_order_relaxed);
    for (;;) {
        long long grant =
            std::min<long long>(want, std::max<long long>(0, cur));
        if (grant == 0)
            return 0;
        if (slots.compare_exchange_weak(cur, cur - grant,
                                        std::memory_order_relaxed))
            return static_cast<unsigned>(grant);
    }
}

unsigned
ThreadBudget::acquireExact(unsigned want)
{
    freeSlots().fetch_sub(static_cast<long long>(want),
                          std::memory_order_relaxed);
    return want;
}

void
ThreadBudget::release(unsigned n)
{
    freeSlots().fetch_add(static_cast<long long>(n),
                          std::memory_order_relaxed);
}

unsigned
ThreadBudget::available()
{
    long long cur = freeSlots().load(std::memory_order_relaxed);
    return cur > 0 ? static_cast<unsigned>(cur) : 0;
}

} // namespace pld
