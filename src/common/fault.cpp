#include "common/fault.h"

#include <cctype>
#include <cstdlib>

#include "common/hash.h"
#include "common/logging.h"

namespace pld {

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::RouteFail: return "route_fail";
      case FaultKind::TimingMiss: return "timing_miss";
      case FaultKind::CacheCorrupt: return "cache_corrupt";
      case FaultKind::CompileThrow: return "throw";
    }
    return "?";
}

namespace {

bool
parseKind(const std::string &s, FaultKind &out)
{
    for (FaultKind k :
         {FaultKind::RouteFail, FaultKind::TimingMiss,
          FaultKind::CacheCorrupt, FaultKind::CompileThrow}) {
        if (s == faultKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t end = spec.find(';', pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;

        FaultSpec fs;
        // kind ':' op ['*' count] ['@' probability]
        size_t colon = entry.find(':');
        if (colon == std::string::npos ||
            !parseKind(entry.substr(0, colon), fs.kind)) {
            pld_fatal("PLD_FAULT: bad entry '%s' (want "
                      "kind:op[*count][@prob], kind one of route_fail"
                      "|timing_miss|cache_corrupt|throw)",
                      entry.c_str());
        }
        std::string rest = entry.substr(colon + 1);
        size_t at = rest.find('@');
        if (at != std::string::npos) {
            fs.probability = std::atof(rest.c_str() + at + 1);
            if (fs.probability <= 0.0 || fs.probability > 1.0)
                pld_fatal("PLD_FAULT: probability out of (0,1] in "
                          "'%s'", entry.c_str());
            rest = rest.substr(0, at);
        }
        size_t star = rest.find('*');
        // A bare "*" op has no count suffix; only treat '*' as the
        // count separator when digits follow it.
        if (star != std::string::npos && star + 1 < rest.size() &&
            std::isdigit(static_cast<unsigned char>(rest[star + 1]))) {
            fs.count = std::atoi(rest.c_str() + star + 1);
            if (fs.count <= 0)
                pld_fatal("PLD_FAULT: count must be positive in "
                          "'%s'", entry.c_str());
            rest = rest.substr(0, star);
        }
        if (rest.empty())
            pld_fatal("PLD_FAULT: missing operator name in '%s'",
                      entry.c_str());
        fs.op = rest;
        plan.specs.push_back(std::move(fs));
    }
    return plan;
}

FaultPlan
FaultPlan::fromEnv()
{
    FaultPlan plan;
    if (const char *e = std::getenv("PLD_FAULT"))
        plan = parse(e);
    if (const char *s = std::getenv("PLD_FAULT_SEED"))
        plan.seed = std::strtoull(s, nullptr, 0);
    return plan;
}

bool
FaultInjector::fires(FaultKind k, const std::string &op,
                     int attempt) const
{
    for (const auto &fs : plan.specs) {
        if (fs.kind != k)
            continue;
        if (fs.op != "*" && fs.op != op)
            continue;
        if (attempt >= fs.count)
            continue;
        if (fs.probability < 1.0) {
            // Deterministic coin: a pure hash of the site, not an
            // RNG stream, so concurrent sites cannot perturb each
            // other's draws.
            Hasher h;
            h.u64(plan.seed);
            h.u64(static_cast<uint64_t>(k));
            h.str(op);
            h.i64(attempt);
            double coin = static_cast<double>(h.digest() >> 11) /
                          static_cast<double>(1ull << 53);
            if (coin >= fs.probability)
                continue;
        }
        return true;
    }
    return false;
}

} // namespace pld
