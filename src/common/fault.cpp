#include "common/fault.h"

#include <cctype>
#include <cstdlib>

#include "common/hash.h"
#include "common/logging.h"

namespace pld {

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::RouteFail: return "route_fail";
      case FaultKind::TimingMiss: return "timing_miss";
      case FaultKind::CacheCorrupt: return "cache_corrupt";
      case FaultKind::CompileThrow: return "throw";
      case FaultKind::ConfigDrop: return "config_drop";
      case FaultKind::ConfigCorrupt: return "config_corrupt";
      case FaultKind::PageHang: return "page_hang";
      case FaultKind::DmaStall: return "dma_stall";
      case FaultKind::IoShortWrite: return "io_short_write";
      case FaultKind::IoEnospc: return "io_enospc";
      case FaultKind::IoEio: return "io_eio";
      case FaultKind::IoTornRename: return "io_torn_rename";
      case FaultKind::IoCrashPoint: return "io_crash_point";
    }
    return "?";
}

namespace {

bool
parseKind(const std::string &s, FaultKind &out)
{
    for (FaultKind k :
         {FaultKind::RouteFail, FaultKind::TimingMiss,
          FaultKind::CacheCorrupt, FaultKind::CompileThrow,
          FaultKind::ConfigDrop, FaultKind::ConfigCorrupt,
          FaultKind::PageHang, FaultKind::DmaStall,
          FaultKind::IoShortWrite, FaultKind::IoEnospc,
          FaultKind::IoEio, FaultKind::IoTornRename,
          FaultKind::IoCrashPoint}) {
        if (s == faultKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

/** Build the FaultSpecInvalid error for entry @p entry starting at
 * byte @p offset of the whole spec string. */
[[noreturn]] void
badEntry(const std::string &entry, size_t offset,
         const std::string &reason)
{
    Diagnostic d;
    d.code = CompileCode::FaultSpecInvalid;
    d.stage = CompileStage::Fault;
    d.severity = DiagSeverity::Error;
    d.detail = "entry '" + entry + "' (offset " +
               std::to_string(offset) + "): " + reason +
               "; grammar: kind:op[*count][@prob], kind one of "
               "route_fail|timing_miss|cache_corrupt|throw|"
               "config_drop|config_corrupt|page_hang|dma_stall|"
               "io_short_write|io_enospc|io_eio|io_torn_rename|"
               "io_crash_point";
    throw CompileError(std::move(d));
}

bool
allDigits(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    }
    return true;
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t end = spec.find(';', pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string entry = spec.substr(pos, end - pos);
        size_t offset = pos;
        pos = end + 1;
        if (entry.empty())
            continue;

        FaultSpec fs;
        // kind ':' op ['*' count] ['@' probability]
        size_t colon = entry.find(':');
        if (colon == std::string::npos)
            badEntry(entry, offset, "missing ':' after fault kind");
        if (!parseKind(entry.substr(0, colon), fs.kind))
            badEntry(entry, offset,
                     "unknown fault kind '" + entry.substr(0, colon) +
                         "'");
        std::string rest = entry.substr(colon + 1);
        size_t at = rest.find('@');
        if (at != std::string::npos) {
            std::string prob = rest.substr(at + 1);
            if (prob.empty())
                badEntry(entry, offset, "empty probability after '@'");
            char *endp = nullptr;
            fs.probability = std::strtod(prob.c_str(), &endp);
            if (endp != prob.c_str() + prob.size())
                badEntry(entry, offset,
                         "malformed probability '" + prob + "'");
            if (fs.probability <= 0.0 || fs.probability > 1.0)
                badEntry(entry, offset,
                         "probability '" + prob +
                             "' out of (0,1]");
            rest = rest.substr(0, at);
        }
        // The operator may itself be the wildcard "*", so the count
        // separator is the LAST '*' — and only when the prefix it
        // leaves is a valid op (bare "*" or star-free name). A '*'
        // directly after '/' is a scoped wildcard op ("t2/" + "*"),
        // never a count separator. Any other use of '*' is a
        // malformed count, not an op quirk.
        size_t star = rest.rfind('*');
        if (star != std::string::npos && star > 0 &&
            rest[star - 1] != '/') {
            std::string suffix = rest.substr(star + 1);
            if (!allDigits(suffix))
                badEntry(entry, offset,
                         "malformed count '" + suffix +
                             "' after '*' (want digits)");
            char *endp = nullptr;
            long n = std::strtol(suffix.c_str(), &endp, 10);
            if (n <= 0 || n > std::numeric_limits<int>::max())
                badEntry(entry, offset,
                         "count '" + suffix +
                             "' out of range (want >= 1)");
            fs.count = static_cast<int>(n);
            rest = rest.substr(0, star);
        }
        if (rest.empty())
            badEntry(entry, offset, "missing operator name");
        // A site is op or tenant/op; each '/'-separated component
        // must be a star-free name or a bare "*".
        size_t slash = rest.find('/');
        if (slash != std::string::npos &&
            rest.find('/', slash + 1) != std::string::npos)
            badEntry(entry, offset,
                     "site '" + rest +
                         "' has more than one '/' (want op or "
                         "tenant/op)");
        auto validComponent = [](const std::string &c) {
            return c == "*" ||
                   (!c.empty() && c.find('*') == std::string::npos);
        };
        bool site_ok =
            slash == std::string::npos
                ? validComponent(rest)
                : validComponent(rest.substr(0, slash)) &&
                      validComponent(rest.substr(slash + 1));
        if (!site_ok)
            badEntry(entry, offset,
                     "site '" + rest +
                         "' components must be names or a bare '*'");
        fs.op = rest;
        plan.specs.push_back(std::move(fs));
    }
    return plan;
}

FaultPlan
FaultPlan::fromEnv()
{
    FaultPlan plan;
    if (const char *e = std::getenv("PLD_FAULT")) {
        try {
            plan = parse(e);
        } catch (const CompileError &err) {
            pld_fatal("PLD_FAULT: %s", err.diag().render().c_str());
        }
    }
    if (const char *s = std::getenv("PLD_FAULT_SEED"))
        plan.seed = std::strtoull(s, nullptr, 0);
    return plan;
}

bool
faultSiteMatches(const std::string &pattern, const std::string &op)
{
    if (pattern == "*" || pattern == op)
        return true;
    size_t ps = pattern.find('/');
    if (ps == std::string::npos)
        return false; // unscoped literal: exact match only
    size_t os = op.find('/');
    if (os == std::string::npos)
        return false; // scoped pattern never matches unscoped site
    const auto component = [](const std::string &s, size_t cut,
                              bool head) {
        return head ? s.substr(0, cut) : s.substr(cut + 1);
    };
    std::string pt = component(pattern, ps, true);
    std::string po = component(pattern, ps, false);
    return (pt == "*" || pt == component(op, os, true)) &&
           (po == "*" || po == component(op, os, false));
}

bool
FaultInjector::fires(FaultKind k, const std::string &op, int attempt,
                     uint64_t salt) const
{
    for (const auto &fs : plan.specs) {
        if (fs.kind != k)
            continue;
        if (!faultSiteMatches(fs.op, op))
            continue;
        if (attempt >= fs.count)
            continue;
        if (fs.probability < 1.0) {
            // Deterministic coin: a pure hash of the site, not an
            // RNG stream, so concurrent sites cannot perturb each
            // other's draws.
            Hasher h;
            h.u64(plan.seed);
            h.u64(static_cast<uint64_t>(k));
            h.str(op);
            h.i64(attempt);
            h.u64(salt);
            double coin = static_cast<double>(h.digest() >> 11) /
                          static_cast<double>(1ull << 53);
            if (coin >= fs.probability)
                continue;
        }
        return true;
    }
    return false;
}

} // namespace pld
