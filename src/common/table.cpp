#include "common/table.h"

#include <cstdio>
#include <sstream>

namespace pld {

void
Table::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
Table::cellOf(double v)
{
    return fmtDouble(v);
}

std::string
Table::toString() const
{
    std::vector<size_t> widths;
    for (const auto &r : rows) {
        if (r.size() > widths.size())
            widths.resize(r.size(), 0);
        for (size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }

    std::ostringstream os;
    if (!title.empty())
        os << "== " << title << " ==\n";
    bool header = true;
    for (const auto &r : rows) {
        for (size_t c = 0; c < r.size(); ++c) {
            os << r[c];
            if (c + 1 < r.size())
                os << std::string(widths[c] - r[c].size() + 2, ' ');
        }
        os << "\n";
        if (header) {
            size_t total = 0;
            for (size_t c = 0; c < r.size(); ++c)
                total += widths[c] + (c + 1 < r.size() ? 2 : 0);
            os << std::string(total, '-') << "\n";
            header = false;
        }
    }
    return os.str();
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
    std::fputc('\n', stdout);
}

std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtSeconds(double s)
{
    char buf[64];
    if (s >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.2fs", s);
    else if (s >= 1e-3)
        std::snprintf(buf, sizeof(buf), "%.1fms", s * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
    return buf;
}

} // namespace pld
