#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>

#include "common/hash.h"
#include "common/logging.h"

namespace pld {
namespace obs {

namespace detail {

std::atomic<int> g_mode{-1};

namespace {
std::atomic<Tracer *> g_current{nullptr};
/** Bumped on every install so cached thread-local buffer pointers
 * from a previous tracer are never reused. */
std::atomic<uint64_t> g_epoch{0};
std::once_flag g_env_once;
std::unique_ptr<Tracer> g_env_tracer;

/** The swap itself, shared by install() and envInit(). Must not
 * touch g_env_once — envInit runs inside that call_once. */
Tracer *
installRaw(Tracer *t)
{
    Tracer *prev = g_current.exchange(t, std::memory_order_relaxed);
    g_epoch.fetch_add(1, std::memory_order_relaxed);
    g_mode.store(t != nullptr, std::memory_order_relaxed);
    return prev;
}

void
envInit()
{
    const char *trace = std::getenv("PLD_TRACE");
    const char *metrics = std::getenv("PLD_METRICS");
    if ((trace && *trace) || (metrics && *metrics)) {
        g_env_tracer = std::make_unique<Tracer>();
        if (trace && *trace)
            g_env_tracer->setTraceFile(trace);
        if (metrics && *metrics)
            g_env_tracer->setMetricsFile(metrics);
        installRaw(g_env_tracer.get());
        // Registered after g_env_tracer's construction, so this runs
        // before its destructor at exit.
        std::atexit([] {
            if (g_env_tracer)
                g_env_tracer->flushToFiles();
        });
    } else {
        g_mode.store(0, std::memory_order_relaxed);
    }
}
} // namespace

bool
slowActive()
{
    std::call_once(g_env_once, envInit);
    return g_mode.load(std::memory_order_relaxed) != 0;
}

} // namespace detail

namespace {

struct TlsRef
{
    Tracer *tracer = nullptr;
    uint64_t epoch = 0;
    EventBuffer *buf = nullptr;
};
thread_local TlsRef t_ref;

uint64_t
globalId(uint32_t buf_id, uint32_t idx)
{
    return (uint64_t(buf_id) + 1) << 32 | (uint64_t(idx) + 1);
}

std::string
fmtDoubleArg(double v)
{
    char tmp[32];
    std::snprintf(tmp, sizeof(tmp), "%.9g", v);
    return tmp;
}

} // namespace

Tracer::Tracer() : epoch(std::chrono::steady_clock::now()) {}

Tracer::~Tracer()
{
    // Never destroy the installed tracer out from under recorders.
    if (detail::g_current.load(std::memory_order_relaxed) == this)
        Tracer::install(nullptr);
}

Tracer *
Tracer::current()
{
    if (!active())
        return nullptr;
    return detail::g_current.load(std::memory_order_relaxed);
}

Tracer *
Tracer::install(Tracer *t)
{
    // Force the env check first so a later lazy check cannot clobber
    // a programmatic install.
    detail::slowActive();
    return detail::installRaw(t);
}

EventBuffer *
Tracer::buffer()
{
    uint64_t e = detail::g_epoch.load(std::memory_order_relaxed);
    if (t_ref.tracer != this || t_ref.epoch != e) {
        t_ref.buf = registerThread();
        t_ref.tracer = this;
        t_ref.epoch = e;
    }
    return t_ref.buf;
}

EventBuffer *
Tracer::registerThread()
{
    std::lock_guard<std::mutex> lk(bufMtx);
    buffers.push_back(std::make_unique<EventBuffer>());
    buffers.back()->id = static_cast<uint32_t>(buffers.size() - 1);
    return buffers.back().get();
}

std::vector<const Event *>
Tracer::allEvents() const
{
    std::lock_guard<std::mutex> lk(bufMtx);
    std::vector<const Event *> out;
    for (const auto &b : buffers) {
        for (const auto &ev : b->events)
            out.push_back(&ev);
    }
    return out;
}

uint64_t
currentSpan()
{
    Tracer *t = Tracer::current();
    if (!t)
        return 0;
    EventBuffer *b = t->buffer();
    if (b->stack.empty())
        return 0;
    return globalId(b->id, b->stack.back());
}

// ---- Span ----------------------------------------------------------

Span::Span(const char *cat, std::string name, uint64_t parent,
           bool structural)
{
    Tracer *t = Tracer::current();
    if (!t)
        return;
    tracer = t;
    buf = t->buffer();
    idx = static_cast<uint32_t>(buf->events.size());
    gid = globalId(buf->id, idx);

    Event ev;
    ev.ph = Phase::Span;
    ev.structural = structural;
    ev.open = true;
    ev.cat = cat;
    ev.name = std::move(name);
    ev.tsUs = t->nowUs();
    ev.id = gid;
    if (parent == kAutoParent) {
        ev.parent = buf->stack.empty()
                        ? 0
                        : globalId(buf->id, buf->stack.back());
    } else {
        ev.parent = parent;
    }
    buf->events.push_back(std::move(ev));
    buf->stack.push_back(idx);
}

Span::~Span()
{
    if (!buf)
        return;
    // If the tracer was swapped while this span was open (tests tear
    // a ScopedTracer down with live spans), the buffer may belong to
    // a dead tracer; the epoch check makes that case a no-op.
    if (t_ref.tracer != tracer ||
        t_ref.epoch != detail::g_epoch.load(std::memory_order_relaxed))
        return;
    Event &ev = buf->events[idx];
    ev.durUs = tracer->nowUs() - ev.tsUs;
    ev.open = false;
    if (!buf->stack.empty() && buf->stack.back() == idx)
        buf->stack.pop_back();
}

Span &
Span::arg(const char *key, const std::string &v)
{
    if (buf)
        buf->events[idx].args.push_back({key, v, true});
    return *this;
}

Span &
Span::arg(const char *key, const char *v)
{
    return arg(key, std::string(v));
}

Span &
Span::arg(const char *key, int64_t v)
{
    if (buf)
        buf->events[idx].args.push_back(
            {key, std::to_string(v), false});
    return *this;
}

Span &
Span::arg(const char *key, double v)
{
    if (buf)
        buf->events[idx].args.push_back({key, fmtDoubleArg(v), false});
    return *this;
}

// ---- instant / flow ------------------------------------------------

namespace {

EventRef
pointEvent(Phase ph, const char *cat, std::string name,
           uint64_t flow_id, bool structural)
{
    Tracer *t = Tracer::current();
    if (!t)
        return EventRef{};
    EventBuffer *b = t->buffer();
    uint32_t idx = static_cast<uint32_t>(b->events.size());
    Event ev;
    ev.ph = ph;
    ev.structural = structural;
    ev.cat = cat;
    ev.name = std::move(name);
    ev.tsUs = t->nowUs();
    ev.id = globalId(b->id, idx);
    ev.parent =
        b->stack.empty() ? 0 : globalId(b->id, b->stack.back());
    ev.flowId = flow_id;
    b->events.push_back(std::move(ev));
    return EventRef{b, idx};
}

} // namespace

EventRef
instant(const char *cat, std::string name, bool structural)
{
    return pointEvent(Phase::Instant, cat, std::move(name), 0,
                      structural);
}

EventRef
flowStart(const char *cat, std::string name, uint64_t flow_id)
{
    return pointEvent(Phase::FlowStart, cat, std::move(name), flow_id,
                      true);
}

EventRef
flowFinish(const char *cat, std::string name, uint64_t flow_id)
{
    return pointEvent(Phase::FlowFinish, cat, std::move(name),
                      flow_id, true);
}

EventRef &
EventRef::arg(const char *key, const std::string &v)
{
    if (buf)
        buf->events[idx].args.push_back({key, v, true});
    return *this;
}

EventRef &
EventRef::arg(const char *key, int64_t v)
{
    if (buf)
        buf->events[idx].args.push_back(
            {key, std::to_string(v), false});
    return *this;
}

EventRef &
EventRef::arg(const char *key, double v)
{
    if (buf)
        buf->events[idx].args.push_back({key, fmtDoubleArg(v), false});
    return *this;
}

// ---- metrics entry points ------------------------------------------

void
count(const std::string &name, int64_t delta)
{
    if (Tracer *t = Tracer::current())
        t->metrics().add(name, delta);
}

void
gauge(const std::string &name, double value)
{
    if (Tracer *t = Tracer::current())
        t->metrics().set(name, value);
}

void
record(const std::string &name, double value)
{
    if (Tracer *t = Tracer::current())
        t->metrics().record(name, value);
}

MetricsRegistry::Window
beginWindow()
{
    if (Tracer *t = Tracer::current())
        return t->metrics().beginWindow();
    return {};
}

MetricsSnapshot
endWindow(const MetricsRegistry::Window &w)
{
    if (Tracer *t = Tracer::current())
        return t->metrics().since(w);
    return {};
}

Tracer *
ensureProcessTracer()
{
    if (Tracer *t = Tracer::current())
        return t;
    static Tracer process_tracer;
    Tracer::install(&process_tracer);
    return &process_tracer;
}

// ---- structure hash ------------------------------------------------

/**
 * The hash walks the event forest bottom-up. Children are looked up
 * through non-structural ancestors so a structural span under a
 * "sched" lane still contributes — attached to the lane's own
 * structural parent.
 */
uint64_t
Tracer::structureHash() const
{
    std::vector<const Event *> events = allEvents();

    // id -> event
    std::map<uint64_t, const Event *> byId;
    for (const Event *e : events)
        byId[e->id] = e;

    // Resolve each event's nearest *structural* ancestor.
    auto structuralParent = [&](const Event *e) -> uint64_t {
        uint64_t p = e->parent;
        while (p != 0) {
            auto it = byId.find(p);
            if (it == byId.end())
                return 0;
            if (it->second->structural)
                return p;
            p = it->second->parent;
        }
        return 0;
    };

    std::map<uint64_t, std::vector<const Event *>> children;
    std::vector<const Event *> roots;
    for (const Event *e : events) {
        if (!e->structural)
            continue;
        uint64_t p = structuralParent(e);
        if (p == 0)
            roots.push_back(e);
        else
            children[p].push_back(e);
    }

    // Bottom-up Merkle hash; recursion depth == span nesting depth.
    std::function<uint64_t(const Event *)> hashNode =
        [&](const Event *e) -> uint64_t {
        Hasher h;
        h.u64(static_cast<uint64_t>(e->ph));
        h.str(e->cat);
        h.str(e->name);
        for (const auto &a : e->args) {
            h.str(a.key);
            h.str(a.val);
        }
        std::vector<uint64_t> kids;
        auto it = children.find(e->id);
        if (it != children.end()) {
            for (const Event *c : it->second)
                kids.push_back(hashNode(c));
        }
        std::sort(kids.begin(), kids.end());
        for (uint64_t k : kids)
            h.u64(k);
        return h.digest();
    };

    std::vector<uint64_t> top;
    for (const Event *r : roots)
        top.push_back(hashNode(r));
    std::sort(top.begin(), top.end());
    Hasher h;
    h.u64(top.size());
    for (uint64_t v : top)
        h.u64(v);
    return h.digest();
}

// ---- export --------------------------------------------------------

namespace {

void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char tmp[8];
                std::snprintf(tmp, sizeof(tmp), "\\u%04x", c);
                os << tmp;
            } else {
                os << c;
            }
        }
    }
}

void
writeArgs(std::ostream &os, const Event &e)
{
    os << "\"args\":{";
    for (size_t i = 0; i < e.args.size(); ++i) {
        if (i)
            os << ",";
        os << "\"";
        jsonEscape(os, e.args[i].key);
        os << "\":";
        if (e.args[i].quoted) {
            os << "\"";
            jsonEscape(os, e.args[i].val);
            os << "\"";
        } else {
            os << e.args[i].val;
        }
    }
    os << "}";
}

char
phaseChar(Phase ph, bool open)
{
    switch (ph) {
      case Phase::Span: return open ? 'B' : 'X';
      case Phase::Instant: return 'i';
      case Phase::FlowStart: return 's';
      case Phase::FlowFinish: return 'f';
    }
    return 'X';
}

} // namespace

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    std::lock_guard<std::mutex> lk(bufMtx);
    os << "{\"traceEvents\":[";
    bool first = true;
    char num[64];
    for (const auto &b : buffers) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,"
           << "\"tid\":" << b->id + 1
           << ",\"args\":{\"name\":\"pld-" << b->id << "\"}}";
        for (const auto &e : b->events) {
            os << ",\n{\"name\":\"";
            jsonEscape(os, e.name);
            os << "\",\"cat\":\"";
            jsonEscape(os, e.cat);
            os << "\",\"ph\":\"" << phaseChar(e.ph, e.open)
               << "\",\"pid\":1,\"tid\":" << b->id + 1;
            std::snprintf(num, sizeof(num), "%.3f", e.tsUs);
            os << ",\"ts\":" << num;
            if (e.ph == Phase::Span && !e.open) {
                std::snprintf(num, sizeof(num), "%.3f", e.durUs);
                os << ",\"dur\":" << num;
            }
            if (e.ph == Phase::Instant)
                os << ",\"s\":\"t\"";
            if (e.ph == Phase::FlowStart ||
                e.ph == Phase::FlowFinish)
                os << ",\"id\":" << e.flowId;
            os << ",";
            writeArgs(os, e);
            os << "}";
        }
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void
Tracer::writeMetricsJson(std::ostream &os) const
{
    MetricsSnapshot s = registry.snapshot();
    char hex[32];
    os << "{\n";
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(structureHash()));
    os << "  \"structure_hash\": \"" << hex << "\",\n";
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(s.countersHash()));
    os << "  \"counters_hash\": \"" << hex << "\",\n";
    os << "  \"counters\": {";
    bool first = true;
    for (const auto &[k, v] : s.counters) {
        os << (first ? "\n" : ",\n") << "    \"";
        jsonEscape(os, k);
        os << "\": " << v;
        first = false;
    }
    os << "\n  },\n  \"gauges\": {";
    first = true;
    char num[64];
    for (const auto &[k, v] : s.gauges) {
        std::snprintf(num, sizeof(num), "%.9g", v);
        os << (first ? "\n" : ",\n") << "    \"";
        jsonEscape(os, k);
        os << "\": " << num;
        first = false;
    }
    os << "\n  },\n  \"dists\": {";
    first = true;
    for (const auto &[k, d] : s.dists) {
        os << (first ? "\n" : ",\n") << "    \"";
        jsonEscape(os, k);
        os << "\": {\"count\": " << d.count;
        std::snprintf(num, sizeof(num), "%.9g", d.sum);
        os << ", \"sum\": " << num;
        std::snprintf(num, sizeof(num), "%.9g", d.min);
        os << ", \"min\": " << num;
        std::snprintf(num, sizeof(num), "%.9g", d.p50);
        os << ", \"p50\": " << num;
        std::snprintf(num, sizeof(num), "%.9g", d.p95);
        os << ", \"p95\": " << num;
        std::snprintf(num, sizeof(num), "%.9g", d.max);
        os << ", \"max\": " << num << "}";
        first = false;
    }
    os << "\n  }\n}\n";
}

void
Tracer::flushToFiles() const
{
    if (!tracePath.empty()) {
        std::ofstream f(tracePath);
        if (f) {
            writeChromeTrace(f);
        } else {
            pld_warn("PLD_TRACE: cannot write %s", tracePath.c_str());
        }
    }
    if (!metricsPath.empty()) {
        std::ofstream f(metricsPath);
        if (f) {
            writeMetricsJson(f);
        } else {
            pld_warn("PLD_METRICS: cannot write %s",
                     metricsPath.c_str());
        }
    }
}

} // namespace obs
} // namespace pld
