/**
 * @file
 * Minimal JSON parser + Chrome-trace validator.
 *
 * CI validates emitted traces without Python, so the checker is a
 * ~200-line recursive-descent parser over a tagged value model. It
 * handles exactly the JSON the exporter emits (objects, arrays,
 * strings with \-escapes, numbers, booleans, null) — not a general
 * spec-lawyer parser, but strict enough that malformed output fails.
 */

#ifndef PLD_OBS_JSON_H
#define PLD_OBS_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pld {
namespace obs {
namespace json {

enum class Type
{
    Null,
    Bool,
    Num,
    Str,
    Arr,
    Obj,
};

struct Value
{
    Type type = Type::Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<Value> arr;
    std::map<std::string, Value> obj;

    bool isNull() const { return type == Type::Null; }

    /** Member lookup; nullptr when absent or not an object. */
    const Value *
    get(const std::string &key) const
    {
        if (type != Type::Obj)
            return nullptr;
        auto it = obj.find(key);
        return it == obj.end() ? nullptr : &it->second;
    }
};

/**
 * Parse @p text into @p out. Returns true on success; on failure
 * @p err describes the first problem with a byte offset.
 */
bool parse(const std::string &text, Value &out, std::string &err);

/**
 * Validate a parsed document as Chrome trace-event JSON: a top-level
 * "traceEvents" array whose entries have known "ph" values, every
 * "B" has a matching "E" on the same pid/tid (LIFO order), "X" events
 * carry a non-negative "dur", and "s"/"f" flow events carry ids.
 * Returns true when valid; @p err explains the first violation.
 */
bool checkChromeTrace(const Value &doc, std::string &err);

} // namespace json
} // namespace obs
} // namespace pld

#endif // PLD_OBS_JSON_H
