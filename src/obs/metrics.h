/**
 * @file
 * Metrics for the compile pipeline: monotonic counters, gauges, and
 * value distributions with deterministic summaries.
 *
 * Determinism contract (the PR 3 verdict-hash discipline applied to
 * telemetry): counter totals are pure functions of the build inputs —
 * graph, seed, fault plan — never of thread count or scheduling.
 * Counters that cannot honour that (actual-wait counts, lane
 * occupancy) must use the "sched." name prefix, which excludes them
 * from determinism comparisons. Gauges and distributions carry
 * timing-flavoured values and are always excluded; a distribution's
 * summary is computed over its *sorted* samples, so for deterministic
 * value sets the summary is scheduling-independent too.
 */

#ifndef PLD_OBS_METRICS_H
#define PLD_OBS_METRICS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace pld {
namespace obs {

/** Prefix marking scheduling-dependent counters (excluded from the
 * determinism hash and from counter-total comparisons). */
inline bool
isSchedName(const std::string &name)
{
    return name.rfind("sched.", 0) == 0;
}

/** Order statistics of one distribution (nearest-rank quantiles). */
struct DistSummary
{
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double p50 = 0;
    double p95 = 0;
    double max = 0;
    /** The raw samples, sorted ascending (page-time strips etc.). */
    std::vector<double> samples;

    double mean() const { return count ? sum / double(count) : 0; }
};

/**
 * Point-in-time (or build-window delta) view of the registry. This is
 * what AppBuild::report carries: the per-compile telemetry snapshot.
 */
struct MetricsSnapshot
{
    /** True when a tracer was installed while the window was open. */
    bool enabled = false;
    std::map<std::string, int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, DistSummary> dists;

    int64_t
    counter(const std::string &name, int64_t fallback = 0) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? fallback : it->second;
    }

    double
    gauge(const std::string &name, double fallback = 0) const
    {
        auto it = gauges.find(name);
        return it == gauges.end() ? fallback : it->second;
    }

    /** nullptr when the distribution has no samples in the window. */
    const DistSummary *
    dist(const std::string &name) const
    {
        auto it = dists.find(name);
        return it == dists.end() ? nullptr : &it->second;
    }

    /** Deterministic counters only (no "sched." names). */
    std::map<std::string, int64_t> deterministicCounters() const;

    /** FNV hash over the deterministic counter map. */
    uint64_t countersHash() const;
};

/** Compute a summary from unsorted samples (sorts a copy). */
DistSummary summarize(std::vector<double> samples);

/**
 * Thread-safe registry. One per Tracer; all mutation goes through a
 * single mutex — the hot compile paths touch it per stage / per
 * iteration, never per annealing move, so contention is negligible.
 */
class MetricsRegistry
{
  public:
    void add(const std::string &name, int64_t delta);
    void set(const std::string &name, double value);
    void record(const std::string &name, double value);

    /**
     * Marks the start of a per-compile window: counter values and
     * per-distribution sample counts as of now. Deltas against a
     * window are exact for sequential builds; concurrent builds
     * through one compiler interleave their samples (documented
     * best-effort, like CacheStats).
     */
    struct Window
    {
        std::map<std::string, int64_t> counters;
        std::map<std::string, size_t> distSizes;
    };

    Window beginWindow() const;
    MetricsSnapshot since(const Window &w) const;
    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex mtx;
    std::map<std::string, int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, std::vector<double>> samples;
};

} // namespace obs
} // namespace pld

#endif // PLD_OBS_METRICS_H
