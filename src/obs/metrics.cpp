#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace pld {
namespace obs {

namespace {

/** Nearest-rank quantile over an ascending-sorted sample vector. */
double
quantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    size_t rank = static_cast<size_t>(
        std::max(1.0, std::ceil(q * double(sorted.size()))));
    return sorted[std::min(rank, sorted.size()) - 1];
}

} // namespace

DistSummary
summarize(std::vector<double> samples)
{
    DistSummary s;
    if (samples.empty())
        return s;
    std::sort(samples.begin(), samples.end());
    s.count = samples.size();
    for (double v : samples)
        s.sum += v;
    s.min = samples.front();
    s.max = samples.back();
    s.p50 = quantile(samples, 0.50);
    s.p95 = quantile(samples, 0.95);
    s.samples = std::move(samples);
    return s;
}

std::map<std::string, int64_t>
MetricsSnapshot::deterministicCounters() const
{
    std::map<std::string, int64_t> out;
    for (const auto &[k, v] : counters) {
        if (!isSchedName(k))
            out.emplace(k, v);
    }
    return out;
}

uint64_t
MetricsSnapshot::countersHash() const
{
    Hasher h;
    for (const auto &[k, v] : deterministicCounters()) {
        h.str(k);
        h.i64(v);
    }
    return h.digest();
}

void
MetricsRegistry::add(const std::string &name, int64_t delta)
{
    std::lock_guard<std::mutex> lk(mtx);
    counters[name] += delta;
}

void
MetricsRegistry::set(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lk(mtx);
    gauges[name] = value;
}

void
MetricsRegistry::record(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lk(mtx);
    samples[name].push_back(value);
}

MetricsRegistry::Window
MetricsRegistry::beginWindow() const
{
    std::lock_guard<std::mutex> lk(mtx);
    Window w;
    w.counters = counters;
    for (const auto &[name, vec] : samples)
        w.distSizes[name] = vec.size();
    return w;
}

MetricsSnapshot
MetricsRegistry::since(const Window &w) const
{
    std::lock_guard<std::mutex> lk(mtx);
    MetricsSnapshot s;
    s.enabled = true;
    for (const auto &[name, v] : counters) {
        auto it = w.counters.find(name);
        int64_t base = it == w.counters.end() ? 0 : it->second;
        if (v != base)
            s.counters[name] = v - base;
    }
    s.gauges = gauges;
    for (const auto &[name, vec] : samples) {
        auto it = w.distSizes.find(name);
        size_t from = it == w.distSizes.end() ? 0 : it->second;
        if (from >= vec.size())
            continue;
        s.dists[name] = summarize(
            std::vector<double>(vec.begin() + from, vec.end()));
    }
    return s;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    return since(Window{});
}

} // namespace obs
} // namespace pld
