#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace pld {
namespace obs {
namespace json {

namespace {

class Parser
{
  public:
    Parser(const std::string &text, std::string &err)
        : text(text), err(err)
    {
    }

    bool
    run(Value &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        if (pos != text.size())
            return fail("trailing content");
        return true;
    }

  private:
    const std::string &text;
    std::string &err;
    size_t pos = 0;

    bool
    fail(const std::string &what)
    {
        err = what + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, Value &out, Type type, bool bval)
    {
        size_t n = std::string(word).size();
        if (text.compare(pos, n, word) != 0)
            return fail("bad literal");
        pos += n;
        out.type = type;
        out.b = bval;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("truncated escape");
                char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned v = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos++];
                        v <<= 4;
                        if (h >= '0' && h <= '9')
                            v |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            v |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            v |= unsigned(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    // The exporter only emits \u00xx control codes;
                    // encode the general case as UTF-8 anyway.
                    if (v < 0x80) {
                        out += char(v);
                    } else if (v < 0x800) {
                        out += char(0xC0 | (v >> 6));
                        out += char(0x80 | (v & 0x3F));
                    } else {
                        out += char(0xE0 | (v >> 12));
                        out += char(0x80 | ((v >> 6) & 0x3F));
                        out += char(0x80 | (v & 0x3F));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    number(Value &out)
    {
        size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        bool digits = false;
        while (pos < text.size()) {
            char c = text[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                digits = true;
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-' ||
                       c == '+') {
                ++pos;
            } else {
                break;
            }
        }
        if (!digits)
            return fail("bad number");
        out.type = Type::Num;
        out.num = std::strtod(text.substr(start, pos - start).c_str(),
                              nullptr);
        return true;
    }

    bool
    value(Value &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            out.type = Type::Str;
            return string(out.str);
        }
        if (c == 't')
            return literal("true", out, Type::Bool, true);
        if (c == 'f')
            return literal("false", out, Type::Bool, false);
        if (c == 'n')
            return literal("null", out, Type::Null, false);
        return number(out);
    }

    bool
    object(Value &out)
    {
        consume('{');
        out.type = Type::Obj;
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            Value v;
            if (!value(v))
                return false;
            out.obj.emplace(std::move(key), std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(Value &out)
    {
        consume('[');
        out.type = Type::Arr;
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            Value v;
            if (!value(v))
                return false;
            out.arr.push_back(std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']'");
        }
    }
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string &err)
{
    return Parser(text, err).run(out);
}

bool
checkChromeTrace(const Value &doc, std::string &err)
{
    const Value *events = doc.get("traceEvents");
    if (!events || events->type != Type::Arr) {
        err = "missing traceEvents array";
        return false;
    }
    // Per-(pid,tid) stack of open "B" events.
    std::map<std::pair<double, double>, std::vector<std::string>> open;
    size_t i = 0;
    for (const Value &e : events->arr) {
        std::string at = "event " + std::to_string(i++);
        if (e.type != Type::Obj) {
            err = at + ": not an object";
            return false;
        }
        const Value *ph = e.get("ph");
        if (!ph || ph->type != Type::Str || ph->str.size() != 1) {
            err = at + ": missing ph";
            return false;
        }
        const Value *name = e.get("name");
        if (!name || name->type != Type::Str) {
            err = at + ": missing name";
            return false;
        }
        const Value *pid = e.get("pid");
        const Value *tid = e.get("tid");
        if (!pid || pid->type != Type::Num || !tid ||
            tid->type != Type::Num) {
            err = at + ": missing pid/tid";
            return false;
        }
        auto key = std::make_pair(pid->num, tid->num);
        char p = ph->str[0];
        const Value *ts = e.get("ts");
        switch (p) {
          case 'M':
            break;
          case 'B':
            if (!ts || ts->type != Type::Num) {
                err = at + ": B without ts";
                return false;
            }
            open[key].push_back(name->str);
            break;
          case 'E': {
            auto &stk = open[key];
            if (stk.empty()) {
                err = at + ": E without matching B";
                return false;
            }
            if (stk.back() != name->str) {
                err = at + ": E '" + name->str +
                      "' does not match open B '" + stk.back() + "'";
                return false;
            }
            stk.pop_back();
            break;
          }
          case 'X': {
            const Value *dur = e.get("dur");
            if (!ts || ts->type != Type::Num || !dur ||
                dur->type != Type::Num || dur->num < 0) {
                err = at + ": X without ts/dur or negative dur";
                return false;
            }
            break;
          }
          case 'i': {
            const Value *s = e.get("s");
            if (!ts || ts->type != Type::Num || !s ||
                s->type != Type::Str) {
                err = at + ": i without ts/s";
                return false;
            }
            break;
          }
          case 's':
          case 'f': {
            const Value *id = e.get("id");
            if (!ts || ts->type != Type::Num || !id ||
                id->type != Type::Num) {
                err = at + ": flow event without ts/id";
                return false;
            }
            break;
          }
          default:
            err = at + ": unknown ph '" + ph->str + "'";
            return false;
        }
    }
    for (const auto &[key, stk] : open) {
        if (!stk.empty()) {
            err = "unclosed B event '" + stk.back() + "'";
            return false;
        }
    }
    return true;
}

} // namespace json
} // namespace obs
} // namespace pld
