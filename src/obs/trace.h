/**
 * @file
 * Span tracing for the compile pipeline.
 *
 * Every stage of a PLD compile — HLS schedule/emit, synthesis, the
 * annealing placer, PathFinder negotiation iterations, bitstream
 * generation, the artifact cache, the retry ladder, and the
 * cycle-level system simulator — records RAII spans and instant
 * events into per-thread buffers owned by a process-global Tracer.
 * The result exports as Chrome trace-event (catapult) JSON
 * (PLD_TRACE=<file>) plus a machine-readable metrics dump
 * (PLD_METRICS=<file>).
 *
 * Cost model: when no tracer is installed, every entry point is one
 * relaxed atomic load and an early return — spans are a no-op object.
 * Defining PLD_OBS_DISABLE compiles the fast path out entirely.
 *
 * Determinism contract: the *structure* of the span tree (names,
 * categories, args, parent/child shape) and all deterministic counter
 * totals are identical for every PLD_THREADS value; only timestamps,
 * durations, and thread ids vary. Two mechanisms make that hold under
 * the thread pools:
 *
 *  - logical parenting: code that fans work out to a pool captures
 *    currentSpan() and passes the token to Span's explicit-parent
 *    constructor, so a span's parent is its logical caller, not
 *    whatever happened to be on the worker's stack;
 *  - scheduling-dependent events (router lanes, wait counts) are
 *    marked non-structural (category "sched" / counter prefix
 *    "sched.") and excluded from structureHash().
 */

#ifndef PLD_OBS_TRACE_H
#define PLD_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace pld {
namespace obs {

/** Event phases (mapped to Chrome trace-event "ph" on export). */
enum class Phase : uint8_t
{
    Span,       ///< complete event ("X": ts + dur)
    Instant,    ///< instant event ("i")
    FlowStart,  ///< flow begin ("s")
    FlowFinish, ///< flow end ("f")
};

/** One preformatted event argument (JSON value + quoting flag). */
struct EventArg
{
    std::string key;
    std::string val;
    bool quoted = true;
};

struct Event
{
    Phase ph = Phase::Span;
    /** Excluded from structureHash() when false. */
    bool structural = true;
    /** Span still open (export before close; should not happen in
     * well-formed runs — the checker flags it). */
    bool open = false;
    const char *cat = "";
    std::string name;
    double tsUs = 0;
    double durUs = 0;
    uint64_t id = 0;     ///< global id: (buffer+1)<<32 | (index+1)
    uint64_t parent = 0; ///< global id of parent span (0 = root)
    uint64_t flowId = 0; ///< correlates FlowStart/FlowFinish pairs
    std::vector<EventArg> args;
};

/** Per-thread event storage; appended only by the owning thread. */
class EventBuffer
{
  public:
    uint32_t id = 0;
    std::vector<Event> events;
    /** Indices of currently-open spans (LIFO by scoping). */
    std::vector<uint32_t> stack;
};

namespace detail {
extern std::atomic<int> g_mode; ///< -1 uninit, 0 off, 1 on
bool slowActive();
} // namespace detail

class Tracer;

/** Is any tracer installed? One relaxed load on the fast path. */
inline bool
active()
{
#ifdef PLD_OBS_DISABLE
    return false;
#else
    int m = detail::g_mode.load(std::memory_order_relaxed);
    if (m >= 0)
        return m != 0;
    return detail::slowActive();
#endif
}

/**
 * The process tracer. Usually installed lazily from the PLD_TRACE /
 * PLD_METRICS environment (files written at process exit), or
 * programmatically via ScopedTracer (tests) / ensureProcessTracer()
 * (benches that want metrics without files).
 */
class Tracer
{
  public:
    Tracer();
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Currently installed tracer (nullptr when tracing is off).
     * Performs the one-time environment check. */
    static Tracer *current();

    /** Install @p t as the process tracer (nullptr = tracing off).
     * Returns the previously installed tracer. Not safe while other
     * threads are recording — install at quiescence. */
    static Tracer *install(Tracer *t);

    MetricsRegistry &metrics() { return registry; }

    /** This thread's buffer (registering it on first use). */
    EventBuffer *buffer();

    /** Microseconds since tracer construction. */
    double
    nowUs() const
    {
        return std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - epoch)
            .count();
    }

    // ---- analysis / export (call at quiescence only) -------------

    /**
     * Merkle hash of the structural span tree: every structural
     * event hashes (phase, cat, name, args) plus the sorted multiset
     * of its structural children's hashes; non-structural nodes are
     * skipped with their children re-parented to the nearest
     * structural ancestor. Timestamps, durations, and thread ids
     * never enter the hash.
     */
    uint64_t structureHash() const;

    void writeChromeTrace(std::ostream &os) const;
    void writeMetricsJson(std::ostream &os) const;

    /** Paths written by flushToFiles() (empty = skip). */
    void setTraceFile(std::string path) { tracePath = std::move(path); }
    void setMetricsFile(std::string path)
    {
        metricsPath = std::move(path);
    }
    void flushToFiles() const;

    /** Flat view of all recorded events (tests). */
    std::vector<const Event *> allEvents() const;

  private:
    friend class Span;

    std::chrono::steady_clock::time_point epoch;
    MetricsRegistry registry;
    mutable std::mutex bufMtx;
    std::vector<std::unique_ptr<EventBuffer>> buffers;
    std::string tracePath;
    std::string metricsPath;

    EventBuffer *registerThread();
};

/** Sentinel: derive the parent from this thread's span stack. */
constexpr uint64_t kAutoParent = ~0ull;

/**
 * Token of the innermost open span on this thread (0 when none or
 * tracing is off). Capture it before fanning work out to a thread
 * pool and pass it to Span's parent argument so logical nesting
 * survives the thread hop.
 */
uint64_t currentSpan();

/**
 * RAII span. Construction stamps the start time and links the parent;
 * destruction stamps the duration — exceptions unwind through it, so
 * a throwing compile still closes every span on the way out.
 */
class Span
{
  public:
    Span(const char *cat, std::string name,
         uint64_t parent = kAutoParent, bool structural = true);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach an argument (any time before destruction). */
    Span &arg(const char *key, const std::string &v);
    Span &arg(const char *key, const char *v);
    Span &arg(const char *key, int64_t v);
    Span &arg(const char *key, double v);

    /** Global id for explicit-parent linking (0 when inactive). */
    uint64_t id() const { return gid; }

  private:
    EventBuffer *buf = nullptr;
    Tracer *tracer = nullptr;
    uint32_t idx = 0;
    uint64_t gid = 0;
};

/**
 * Builder for instant/flow events; the event is recorded at
 * construction, args append to it. Use as a temporary:
 *   obs::instant("sys", "dma.in.done").arg("words", n);
 */
class EventRef
{
  public:
    EventRef() = default;
    EventRef(EventBuffer *buf, uint32_t idx) : buf(buf), idx(idx) {}

    EventRef &arg(const char *key, const std::string &v);
    EventRef &arg(const char *key, int64_t v);
    EventRef &arg(const char *key, double v);

  private:
    EventBuffer *buf = nullptr;
    uint32_t idx = 0;
};

EventRef instant(const char *cat, std::string name,
                 bool structural = true);
EventRef flowStart(const char *cat, std::string name, uint64_t flow_id);
EventRef flowFinish(const char *cat, std::string name,
                    uint64_t flow_id);

/** Bump a counter (no-op when tracing is off). Prefix the name with
 * "sched." if its total depends on scheduling or thread count. */
void count(const std::string &name, int64_t delta = 1);

/** Set a gauge (last-write-wins; excluded from determinism). */
void gauge(const std::string &name, double value);

/** Record one sample into a distribution. */
void record(const std::string &name, double value);

/** Begin/end a per-compile metrics window (empty when inactive). */
MetricsRegistry::Window beginWindow();
MetricsSnapshot endWindow(const MetricsRegistry::Window &w);

/**
 * Install a process-lifetime tracer if none is active, so metrics
 * snapshots populate even without PLD_TRACE/PLD_METRICS. Used by the
 * bench harness; writes no files. Returns the active tracer.
 */
Tracer *ensureProcessTracer();

/**
 * Test helper: installs a fresh Tracer for its scope and restores
 * the previous one (usually none) on destruction.
 */
class ScopedTracer
{
  public:
    ScopedTracer() : mine(new Tracer), prev(Tracer::install(mine.get()))
    {
    }
    ~ScopedTracer() { Tracer::install(prev); }

    ScopedTracer(const ScopedTracer &) = delete;
    ScopedTracer &operator=(const ScopedTracer &) = delete;

    Tracer &tracer() { return *mine; }

  private:
    std::unique_ptr<Tracer> mine;
    Tracer *prev;
};

} // namespace obs
} // namespace pld

#endif // PLD_OBS_TRACE_H
