#include "interp/exec.h"

#include <algorithm>
#include <cmath>

namespace pld {
namespace interp {

using ir::ExprKind;
using ir::ExprPtr;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtPtr;
using ir::Type;

namespace {

using Wide = __int128;

uint64_t
maskBits(int w)
{
    return w >= 64 ? ~0ull : ((1ull << w) - 1);
}

int64_t
canonicalize(uint64_t bits, const Type &t)
{
    bits &= maskBits(t.width);
    if (t.isSigned() && t.width < 64) {
        uint64_t m = 1ull << (t.width - 1);
        return static_cast<int64_t>((bits ^ m) - m);
    }
    return static_cast<int64_t>(bits);
}

Wide
shiftWide(Wide v, int sh)
{
    if (sh >= 0)
        return v << sh;
    return v >> (-sh); // arithmetic: AP_TRN truncation toward -inf
}

} // namespace

OperatorExec::OperatorExec(const ir::OperatorFn &fn,
                           std::vector<dataflow::StreamPort *> ports)
    : fnRef(fn), ports(std::move(ports))
{
    pld_assert(this->ports.size() == fn.ports.size(),
               "%s: %zu ports supplied, operator has %zu",
               fn.name.c_str(), this->ports.size(), fn.ports.size());
    reset();
}

void
OperatorExec::reset()
{
    vars.assign(fnRef.vars.size(), 0);
    arrays.clear();
    arrays.reserve(fnRef.arrays.size());
    for (const auto &a : fnRef.arrays) {
        std::vector<int64_t> store(static_cast<size_t>(a.size), 0);
        // ROM words live in elemType-wide storage on every real
        // target (BRAM, softcore data memory), so non-canonical init
        // raws must wrap to the element width here too — found by
        // pldfuzz as an interp-vs-rvgen divergence.
        for (size_t i = 0; i < a.init.size(); ++i)
            store[i] = canonicalize(static_cast<uint64_t>(a.init[i]),
                                    a.elemType);
        arrays.push_back(std::move(store));
    }
    frames.clear();
    frames.push_back({&fnRef.body, 0, nullptr});
    started = true;
    stats_ = ExecStats{};
    prints.clear();
}

int64_t
OperatorExec::quantizeTo(int64_t v, int src_frac, const Type &t)
{
    Wide w = shiftWide(static_cast<Wide>(v), t.fracBits() - src_frac);
    return canonicalize(static_cast<uint64_t>(w), t);
}

RunStatus
OperatorExec::exprReadsReady(const ExprPtr &e) const
{
    if (e->kind == ExprKind::StreamRead) {
        int port = static_cast<int>(e->imm);
        if (!ports[port]->canRead())
            return RunStatus::BlockedOnRead;
    }
    for (const auto &a : e->args) {
        RunStatus s = exprReadsReady(a);
        if (s != RunStatus::Done)
            return s;
    }
    return RunStatus::Done;
}

RunStatus
OperatorExec::streamsReady(const Stmt &s) const
{
    for (const auto &e : s.args) {
        RunStatus r = exprReadsReady(e);
        if (r != RunStatus::Done)
            return r;
    }
    if (s.kind == StmtKind::StreamWrite) {
        int port = static_cast<int>(s.imm);
        if (!ports[port]->canWrite())
            return RunStatus::BlockedOnWrite;
    }
    return RunStatus::Done;
}

int64_t
OperatorExec::evalExpr(const ExprPtr &e)
{
    const Type &t = e->type;
    switch (e->kind) {
      case ExprKind::Const:
        return e->imm;
      case ExprKind::VarRef:
        return vars[static_cast<size_t>(e->imm)];
      case ExprKind::ArrayRef: {
        ++stats_.memOps;
        int64_t idx = evalExpr(e->args[0]);
        auto &store = arrays[static_cast<size_t>(e->imm)];
        pld_assert(idx >= 0 &&
                       idx < static_cast<int64_t>(store.size()),
                   "%s: array %s index %lld out of bounds [0,%zu)",
                   fnRef.name.c_str(),
                   fnRef.arrays[e->imm].name.c_str(),
                   static_cast<long long>(idx), store.size());
        return store[static_cast<size_t>(idx)];
      }
      case ExprKind::StreamRead: {
        ++stats_.streamReads;
        uint32_t w = ports[static_cast<size_t>(e->imm)]->read();
        return static_cast<int64_t>(w);
      }
      case ExprKind::Cast: {
        ++stats_.computeOps;
        int64_t a = evalExpr(e->args[0]);
        return quantizeTo(a, e->args[0]->type.fracBits(), t);
      }
      case ExprKind::BitCast: {
        ++stats_.computeOps;
        int64_t a = evalExpr(e->args[0]);
        uint64_t raw = static_cast<uint64_t>(a) &
                       maskBits(e->args[0]->type.width);
        return canonicalize(raw, t);
      }
      case ExprKind::Neg: {
        ++stats_.computeOps;
        int64_t a = evalExpr(e->args[0]);
        return quantizeTo(static_cast<int64_t>(-a),
                          e->args[0]->type.fracBits(), t);
      }
      case ExprKind::Not: {
        ++stats_.computeOps;
        int64_t a = evalExpr(e->args[0]);
        return quantizeTo(~a, e->args[0]->type.fracBits(), t);
      }
      case ExprKind::LNot: {
        ++stats_.computeOps;
        return evalExpr(e->args[0]) == 0 ? 1 : 0;
      }
      case ExprKind::Select: {
        ++stats_.computeOps;
        int64_t c = evalExpr(e->args[0]);
        return evalExpr(c != 0 ? e->args[1] : e->args[2]);
      }
      default:
        break;
    }

    // Binary operators.
    pld_assert(ir::isBinary(e->kind), "unhandled expr kind");
    ++stats_.computeOps;
    const ExprPtr &lhs = e->args[0];
    const ExprPtr &rhs = e->args[1];
    int64_t a = evalExpr(lhs);
    int fa = lhs->type.fracBits();

    if (e->kind == ExprKind::Shl || e->kind == ExprKind::Shr) {
        int sh = static_cast<int>(evalExpr(rhs));
        Wide v = (e->kind == ExprKind::Shl)
                     ? (static_cast<Wide>(a) << sh)
                     : shiftWide(static_cast<Wide>(a), -sh);
        Wide q = shiftWide(v, t.fracBits() - fa);
        return canonicalize(static_cast<uint64_t>(q), t);
    }

    int64_t b = evalExpr(rhs);
    int fb = rhs->type.fracBits();

    switch (e->kind) {
      case ExprKind::Add:
      case ExprKind::Sub: {
        int f = std::max(fa, fb);
        Wide A = shiftWide(a, f - fa);
        Wide B = shiftWide(b, f - fb);
        Wide r = (e->kind == ExprKind::Add) ? A + B : A - B;
        Wide q = shiftWide(r, t.fracBits() - f);
        return canonicalize(static_cast<uint64_t>(q), t);
      }
      case ExprKind::Mul: {
        Wide r = static_cast<Wide>(a) * static_cast<Wide>(b);
        Wide q = shiftWide(r, t.fracBits() - (fa + fb));
        return canonicalize(static_cast<uint64_t>(q), t);
      }
      case ExprKind::Div: {
        if (b == 0)
            return 0;
        int sh = t.fracBits() - fa + fb;
        Wide num = shiftWide(a, sh);
        Wide q = num / static_cast<Wide>(b); // truncates toward zero
        return canonicalize(static_cast<uint64_t>(q), t);
      }
      case ExprKind::Mod: {
        if (b == 0)
            return 0;
        Wide q = static_cast<Wide>(a) % static_cast<Wide>(b);
        return canonicalize(static_cast<uint64_t>(q), t);
      }
      case ExprKind::And:
      case ExprKind::Or:
      case ExprKind::Xor: {
        int f = std::max(fa, fb);
        uint64_t A = static_cast<uint64_t>(shiftWide(a, f - fa));
        uint64_t B = static_cast<uint64_t>(shiftWide(b, f - fb));
        uint64_t r = e->kind == ExprKind::And   ? (A & B)
                     : e->kind == ExprKind::Or ? (A | B)
                                               : (A ^ B);
        return quantizeTo(static_cast<int64_t>(r), f, t);
      }
      case ExprKind::Lt:
      case ExprKind::Le:
      case ExprKind::Gt:
      case ExprKind::Ge:
      case ExprKind::Eq:
      case ExprKind::Ne: {
        int f = std::max(fa, fb);
        Wide A = shiftWide(a, f - fa);
        Wide B = shiftWide(b, f - fb);
        bool r = false;
        switch (e->kind) {
          case ExprKind::Lt: r = A < B; break;
          case ExprKind::Le: r = A <= B; break;
          case ExprKind::Gt: r = A > B; break;
          case ExprKind::Ge: r = A >= B; break;
          case ExprKind::Eq: r = A == B; break;
          case ExprKind::Ne: r = A != B; break;
          default: break;
        }
        return r ? 1 : 0;
      }
      case ExprKind::LAnd:
        return (a != 0 && b != 0) ? 1 : 0;
      case ExprKind::LOr:
        return (a != 0 || b != 0) ? 1 : 0;
      default:
        pld_panic("unhandled binary kind %s",
                  ir::exprKindName(e->kind));
    }
}

RunStatus
OperatorExec::step()
{
    Frame &top = frames.back();
    if (top.idx >= top.stmts->size()) {
        retireFrame();
        return RunStatus::Done;
    }

    const StmtPtr &sp = (*top.stmts)[top.idx];
    const Stmt &s = *sp;

    RunStatus ready = streamsReady(s);
    if (ready != RunStatus::Done)
        return ready;

    switch (s.kind) {
      case StmtKind::Assign:
        vars[static_cast<size_t>(s.imm)] = evalExpr(s.args[0]);
        ++top.idx;
        break;
      case StmtKind::ArrayStore: {
        ++stats_.memOps;
        int64_t idx = evalExpr(s.args[0]);
        int64_t val = evalExpr(s.args[1]);
        auto &store = arrays[static_cast<size_t>(s.imm)];
        pld_assert(idx >= 0 &&
                       idx < static_cast<int64_t>(store.size()),
                   "%s: array %s store index %lld out of bounds",
                   fnRef.name.c_str(),
                   fnRef.arrays[s.imm].name.c_str(),
                   static_cast<long long>(idx));
        store[static_cast<size_t>(idx)] = val;
        ++top.idx;
        break;
      }
      case StmtKind::StreamWrite: {
        ++stats_.streamWrites;
        int64_t val = evalExpr(s.args[0]);
        ports[static_cast<size_t>(s.imm)]->write(
            static_cast<uint32_t>(static_cast<uint64_t>(val)));
        ++top.idx;
        break;
      }
      case StmtKind::For: {
        vars[static_cast<size_t>(s.imm)] = s.immLo;
        if (s.immLo >= s.immHi || s.body.empty()) {
            ++top.idx;
        } else {
            frames.push_back({&s.body, 0, &s});
        }
        break;
      }
      case StmtKind::While: {
        int64_t c = evalExpr(s.args[0]);
        if (c != 0 && !s.body.empty())
            frames.push_back({&s.body, 0, &s});
        else
            ++top.idx;
        break;
      }
      case StmtKind::If: {
        int64_t c = evalExpr(s.args[0]);
        const auto &branch = (c != 0) ? s.body : s.elseBody;
        if (branch.empty())
            ++top.idx;
        else
            frames.push_back({&branch, 0, &s});
        break;
      }
      case StmtKind::Print: {
        if (printsEnabled) {
            std::string line = fnRef.name + ": " + s.text;
            for (const auto &e : s.args) {
                int64_t v = evalExpr(e);
                double shown = std::ldexp(
                    static_cast<double>(v), -e->type.fracBits());
                line += " " + (e->type.isFixed()
                                   ? std::to_string(shown)
                                   : std::to_string(v));
            }
            prints.push_back(std::move(line));
        }
        ++top.idx;
        break;
      }
      case StmtKind::Block:
        if (s.body.empty())
            ++top.idx;
        else
            frames.push_back({&s.body, 0, &s});
        break;
    }
    ++stats_.statements;
    return RunStatus::Done;
}

void
OperatorExec::retireFrame()
{
    Frame done_frame = frames.back();
    const Stmt *owner = done_frame.owner;

    if (owner && owner->kind == StmtKind::For) {
        int64_t v = vars[static_cast<size_t>(owner->imm)] +
                    owner->immStep;
        vars[static_cast<size_t>(owner->imm)] = v;
        if (v < owner->immHi) {
            frames.back().idx = 0;
            return;
        }
    } else if (owner && owner->kind == StmtKind::While) {
        // Re-evaluate the condition (validator guarantees no stream
        // reads inside it, so this cannot block).
        int64_t c = evalExpr(owner->args[0]);
        if (c != 0) {
            frames.back().idx = 0;
            return;
        }
    }

    frames.pop_back();
    if (!frames.empty())
        ++frames.back().idx;
}

RunStatus
OperatorExec::run(uint64_t max_statements)
{
    uint64_t executed = 0;
    while (!frames.empty()) {
        if (executed >= max_statements)
            return RunStatus::Budget;
        RunStatus st = step();
        if (st != RunStatus::Done)
            return st;
        ++executed;
    }
    return RunStatus::Done;
}

} // namespace interp
} // namespace pld
