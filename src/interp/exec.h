/**
 * @file
 * Resumable operator interpreter.
 *
 * Executes an OperatorFn against StreamPorts with Kahn-network
 * semantics: a statement that needs stream data (or output space) that
 * is not available returns Blocked without side effects, and the
 * scheduler may resume the operator later. Statement execution is
 * atomic, which together with the validator's one-read-per-statement
 * rule makes blocking behaviour identical across all PLD targets.
 *
 * The interpreter is the single functional engine of the
 * reproduction; the timed HW-page model and the "X86 native" baseline
 * both wrap it, and the RV32 softcore results are cross-checked
 * against it.
 */

#ifndef PLD_INTERP_EXEC_H
#define PLD_INTERP_EXEC_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dataflow/stream.h"
#include "ir/operator_fn.h"

namespace pld {
namespace interp {

/** Why a run() call returned. */
enum class RunStatus {
    Done,           ///< operator body finished
    BlockedOnRead,  ///< a needed input stream is empty
    BlockedOnWrite, ///< a needed output stream is full
    Budget,         ///< statement budget exhausted; call run() again
};

/** Execution counters for the timing models. */
struct ExecStats
{
    uint64_t statements = 0;
    uint64_t computeOps = 0; ///< arith/logic/select node evaluations
    uint64_t streamReads = 0;
    uint64_t streamWrites = 0;
    uint64_t memOps = 0; ///< array loads + stores
};

/**
 * One operator execution context. Ports are supplied by the caller
 * and indexed exactly like OperatorFn::ports.
 */
class OperatorExec
{
  public:
    OperatorExec(const ir::OperatorFn &fn,
                 std::vector<dataflow::StreamPort *> ports);

    /**
     * Execute until done, blocked, or @p max_statements executed.
     * Resumable: call again after a Blocked/Budget return.
     */
    RunStatus run(uint64_t max_statements =
                      std::numeric_limits<uint64_t>::max());

    /** True once the body has completed. */
    bool done() const { return frames.empty() && started; }

    /** Reset to the initial state (ROMs reloaded, scalars zeroed). */
    void reset();

    const ExecStats &stats() const { return stats_; }

    /** Enable Print statements (the -O0 / debug experience). */
    void setPrintsEnabled(bool on) { printsEnabled = on; }

    /** Lines produced by Print statements when enabled. */
    const std::vector<std::string> &printLog() const { return prints; }

    const ir::OperatorFn &fn() const { return fnRef; }

  private:
    struct Frame
    {
        const std::vector<ir::StmtPtr> *stmts;
        size_t idx = 0;
        /** For/While statement owning this body frame, else null. */
        const ir::Stmt *owner = nullptr;
    };

    /** Dispatch the statement at the top frame. */
    RunStatus step();

    /** Availability: can every stream op in @p s fire right now? */
    RunStatus streamsReady(const ir::Stmt &s) const;
    RunStatus exprReadsReady(const ir::ExprPtr &e) const;

    int64_t evalExpr(const ir::ExprPtr &e);

    /** Wrap a 64-bit exact value with scale src_frac to type t. */
    static int64_t quantizeTo(int64_t v, int src_frac,
                              const ir::Type &t);

    /** Handle frame exhaustion (loop back-edges, pops). */
    void retireFrame();

    const ir::OperatorFn &fnRef;
    std::vector<dataflow::StreamPort *> ports;
    std::vector<int64_t> vars;
    std::vector<std::vector<int64_t>> arrays;
    std::vector<Frame> frames;
    bool started = false;
    bool printsEnabled = false;
    ExecStats stats_;
    std::vector<std::string> prints;
};

} // namespace interp
} // namespace pld

#endif // PLD_INTERP_EXEC_H
