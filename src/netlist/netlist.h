/**
 * @file
 * Structural netlist IR — the output of "HLS synthesis".
 *
 * Cells are placeable atoms at site granularity (one CLB-worth of
 * logic, one DSP, one BRAM18), annotated with the exact LUT/FF counts
 * they contain so area tables stay accurate. Nets are bus-level
 * connections between cells. This is the packed netlist a VPR-style
 * place-and-route engine consumes.
 */

#ifndef PLD_NETLIST_NETLIST_H
#define PLD_NETLIST_NETLIST_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"

namespace pld {
namespace netlist {

/** Aggregate FPGA resource counts (Table 1 / Table 4 axes). */
struct ResourceCount
{
    int64_t luts = 0;
    int64_t ffs = 0;
    int64_t bram18 = 0;
    int64_t dsps = 0;

    ResourceCount &
    operator+=(const ResourceCount &o)
    {
        luts += o.luts;
        ffs += o.ffs;
        bram18 += o.bram18;
        dsps += o.dsps;
        return *this;
    }

    ResourceCount
    operator+(const ResourceCount &o) const
    {
        ResourceCount r = *this;
        r += o;
        return r;
    }

    /** True when every component of @p need fits under this count. */
    bool
    covers(const ResourceCount &need) const
    {
        return need.luts <= luts && need.ffs <= ffs &&
               need.bram18 <= bram18 && need.dsps <= dsps;
    }

    bool
    operator==(const ResourceCount &o) const
    {
        return luts == o.luts && ffs == o.ffs && bram18 == o.bram18 &&
               dsps == o.dsps;
    }

    std::string toString() const;
};

/** Placeable site categories, matching fabric tile kinds. */
enum class SiteKind : uint8_t { Clb, Dsp, Bram };

/**
 * One placeable cell. CLB cells carry the LUT/FF utilization they
 * pack (<= 8 LUTs / 16 FFs); DSP and BRAM cells occupy one site each.
 */
struct Cell
{
    SiteKind site = SiteKind::Clb;
    std::string name;
    int luts = 0;
    int ffs = 0;
    /** Combinational depth contribution for the timing model. */
    int level = 1;
    /** Pipeline stage id (register boundaries between stages). */
    int stage = 0;
    /** Nets this cell connects to (indices into Netlist::nets). */
    std::vector<int> pins;
};

/** A bus-level net connecting one driver cell to sink cells. */
struct Net
{
    std::string name;
    int width = 32;      ///< bus width in bits (affects route demand)
    int driver = -1;     ///< driving cell index (-1 = external input)
    std::vector<int> sinks;
    /**
     * Registered interconnect (the -O3 kernel generator's FIFO links,
     * Sec 6.3): exempt from the SLR-crossing timing penalty because
     * the crossing is pipelined.
     */
    bool pipelined = false;
};

/**
 * A packed structural netlist.
 */
class Netlist
{
  public:
    std::vector<Cell> cells;
    std::vector<Net> nets;

    /** Add a cell; returns its index. */
    int addCell(Cell c);

    /** Add a net with a driver; returns its index. */
    int addNet(const std::string &net_name, int width,
               int driver_cell);

    /** Attach @p cell_idx as a sink of @p net_idx. */
    void addSink(int net_idx, int cell_idx);

    /** Total resources over all cells. */
    ResourceCount resources() const;

    /** Cells of one site kind. */
    int countSites(SiteKind k) const;

    /**
     * Merge @p other into this netlist, renaming with @p prefix.
     * Returns the cell-index offset applied (for cross-wiring).
     */
    int merge(const Netlist &other, const std::string &prefix);

    /** Structural digest for artifact caching. */
    uint64_t contentHash() const;

    /** Basic invariants: pin/net indices in range, drivers consistent. */
    bool checkConsistent(std::string *problem = nullptr) const;
};

} // namespace netlist
} // namespace pld

#endif // PLD_NETLIST_NETLIST_H
