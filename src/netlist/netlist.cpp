#include "netlist/netlist.h"

#include "common/logging.h"

namespace pld {
namespace netlist {

std::string
ResourceCount::toString() const
{
    return "luts=" + std::to_string(luts) + " ffs=" +
           std::to_string(ffs) + " bram18=" + std::to_string(bram18) +
           " dsps=" + std::to_string(dsps);
}

int
Netlist::addCell(Cell c)
{
    cells.push_back(std::move(c));
    return static_cast<int>(cells.size()) - 1;
}

int
Netlist::addNet(const std::string &net_name, int width,
                int driver_cell)
{
    Net n;
    n.name = net_name;
    n.width = width;
    n.driver = driver_cell;
    nets.push_back(std::move(n));
    int idx = static_cast<int>(nets.size()) - 1;
    if (driver_cell >= 0)
        cells[driver_cell].pins.push_back(idx);
    return idx;
}

void
Netlist::addSink(int net_idx, int cell_idx)
{
    pld_assert(net_idx >= 0 && net_idx < (int)nets.size(),
               "bad net index %d", net_idx);
    pld_assert(cell_idx >= 0 && cell_idx < (int)cells.size(),
               "bad cell index %d", cell_idx);
    nets[net_idx].sinks.push_back(cell_idx);
    cells[cell_idx].pins.push_back(net_idx);
}

ResourceCount
Netlist::resources() const
{
    ResourceCount r;
    for (const auto &c : cells) {
        r.luts += c.luts;
        r.ffs += c.ffs;
        if (c.site == SiteKind::Dsp)
            r.dsps += 1;
        if (c.site == SiteKind::Bram)
            r.bram18 += 1;
    }
    return r;
}

int
Netlist::countSites(SiteKind k) const
{
    int n = 0;
    for (const auto &c : cells)
        n += (c.site == k);
    return n;
}

int
Netlist::merge(const Netlist &other, const std::string &prefix)
{
    int cell_off = static_cast<int>(cells.size());
    int net_off = static_cast<int>(nets.size());
    for (const auto &c : other.cells) {
        Cell nc = c;
        nc.name = prefix + c.name;
        for (auto &p : nc.pins)
            p += net_off;
        cells.push_back(std::move(nc));
    }
    for (const auto &n : other.nets) {
        Net nn = n;
        nn.name = prefix + n.name;
        if (nn.driver >= 0)
            nn.driver += cell_off;
        for (auto &s : nn.sinks)
            s += cell_off;
        nets.push_back(std::move(nn));
    }
    return cell_off;
}

uint64_t
Netlist::contentHash() const
{
    Hasher h;
    h.u64(cells.size());
    for (const auto &c : cells) {
        h.u64(static_cast<uint64_t>(c.site));
        h.i64(c.luts);
        h.i64(c.ffs);
        h.i64(c.level);
        h.i64(c.stage);
        h.u64(c.pins.size());
        for (int p : c.pins)
            h.i64(p);
    }
    h.u64(nets.size());
    for (const auto &n : nets) {
        h.i64(n.width);
        h.i64(n.driver);
        h.u64(n.sinks.size());
        for (int s : n.sinks)
            h.i64(s);
    }
    return h.digest();
}

bool
Netlist::checkConsistent(std::string *problem) const
{
    auto fail = [&](const std::string &msg) {
        if (problem)
            *problem = msg;
        return false;
    };
    for (size_t ci = 0; ci < cells.size(); ++ci) {
        const auto &c = cells[ci];
        if (c.site == SiteKind::Clb && (c.luts > 8 || c.ffs > 16))
            return fail("cell " + c.name + " overpacks its CLB");
        for (int p : c.pins) {
            if (p < 0 || p >= (int)nets.size())
                return fail("cell " + c.name + " pin out of range");
        }
    }
    for (size_t ni = 0; ni < nets.size(); ++ni) {
        const auto &n = nets[ni];
        if (n.driver >= (int)cells.size())
            return fail("net " + n.name + " driver out of range");
        for (int s : n.sinks) {
            if (s < 0 || s >= (int)cells.size())
                return fail("net " + n.name + " sink out of range");
        }
    }
    return true;
}

} // namespace netlist
} // namespace pld
