/**
 * @file
 * Memory-efficient fixed-point types compatible with HLS ap_fixed.
 *
 * ap_fixed<W, I>: W total bits, I integer bits (including sign for the
 * signed variant), W-I fractional bits. Storage is the minimum-width
 * integer holding W bits. Arithmetic follows the HLS default modes:
 * AP_TRN (truncate toward negative infinity) quantization and AP_WRAP
 * overflow. Intermediates use 128-bit math, which is lossless for all
 * widths the Rosetta kernels use.
 */

#ifndef PLD_APT_AP_FIXED_H
#define PLD_APT_AP_FIXED_H

#include <cmath>
#include <cstdint>
#include <string>

#include "apt/ap_int.h"

namespace pld {
namespace apt {

using Int128 = __int128;

template <int W, int I, bool Signed>
class ApFixedBase;

namespace detail {

/** Shift left (positive) or arithmetic-shift right (negative). */
constexpr Int128
shiftBy(Int128 v, int sh)
{
    if (sh >= 0)
        return v << sh;
    // Arithmetic right shift: rounds toward -inf (AP_TRN).
    return v >> (-sh);
}

constexpr Int128
wrapTo(Int128 v, int w, bool is_signed)
{
    uint64_t raw = static_cast<uint64_t>(v) & maskBits(w);
    if (is_signed)
        return signExtend(raw, w);
    return static_cast<Int128>(raw);
}

} // namespace detail

/**
 * Fixed-point number: value = rawInt * 2^-(W-I).
 */
template <int W, int I, bool Signed = true>
class ApFixedBase
{
  public:
    static_assert(W >= 1 && W <= 64, "ap_fixed supports 1..64 bits");
    static constexpr int width = W;
    static constexpr int intBits = I;
    static constexpr int fracBits = W - I;
    static constexpr bool isSigned = Signed;

    using StorageT = typename detail::Storage<W>::type;

    ApFixedBase() : bits(0) {}

    /** Construct from double with truncation to the grid. */
    ApFixedBase(double v) { setFromDouble(v); }

    /** Construct from integer value (shifted into position). */
    ApFixedBase(int v) { setScaled(static_cast<Int128>(v), 0); }
    ApFixedBase(long v) { setScaled(static_cast<Int128>(v), 0); }
    ApFixedBase(long long v) { setScaled(static_cast<Int128>(v), 0); }
    ApFixedBase(unsigned v) { setScaled(static_cast<Int128>(v), 0); }

    /** Convert between fixed formats, re-aligning the binary point. */
    template <int W2, int I2, bool S2>
    ApFixedBase(const ApFixedBase<W2, I2, S2> &o)
    {
        setScaled(o.scaled(), ApFixedBase<W2, I2, S2>::fracBits);
    }

    /** Raw two's-complement bit pattern (low W bits). */
    uint64_t raw() const { return bits; }

    /** Reinterpret the low W bits of @p r as this format. */
    static ApFixedBase
    fromRaw(uint64_t r)
    {
        ApFixedBase f;
        f.bits = static_cast<StorageT>(r & detail::maskBits(W));
        return f;
    }

    /** Signed scaled integer: value * 2^fracBits. */
    Int128
    scaled() const
    {
        if constexpr (Signed)
            return detail::signExtend(bits, W);
        else
            return static_cast<Int128>(bits);
    }

    /** Closest double to the represented value. */
    double
    toDouble() const
    {
        return std::ldexp(static_cast<double>((int64_t)scaled()),
                          -fracBits);
    }

    operator double() const { return toDouble(); }

    /** HLS-style bit-range read on the raw pattern. */
    uint64_t
    range(int hi, int lo) const
    {
        return (bits >> lo) & detail::maskBits(hi - lo + 1);
    }

    /** HLS-style full-width raw write: x(31,0) = word. */
    void
    setRange(int hi, int lo, uint64_t v)
    {
        uint64_t field_mask = detail::maskBits(hi - lo + 1) << lo;
        uint64_t r = (static_cast<uint64_t>(bits) & ~field_mask) |
                     ((v << lo) & field_mask);
        bits = static_cast<StorageT>(r & detail::maskBits(W));
    }

    ApFixedBase
    operator-() const
    {
        ApFixedBase r;
        r.setScaled(-scaled(), fracBits);
        return r;
    }

    ApFixedBase &
    operator+=(const ApFixedBase &o)
    {
        setScaled(scaled() + o.scaled(), fracBits);
        return *this;
    }
    ApFixedBase &
    operator-=(const ApFixedBase &o)
    {
        setScaled(scaled() - o.scaled(), fracBits);
        return *this;
    }

    bool operator==(const ApFixedBase &o) const { return bits == o.bits; }
    bool operator!=(const ApFixedBase &o) const { return bits != o.bits; }
    bool
    operator<(const ApFixedBase &o) const
    {
        return scaled() < o.scaled();
    }
    bool
    operator>(const ApFixedBase &o) const
    {
        return scaled() > o.scaled();
    }
    bool
    operator<=(const ApFixedBase &o) const
    {
        return scaled() <= o.scaled();
    }
    bool
    operator>=(const ApFixedBase &o) const
    {
        return scaled() >= o.scaled();
    }

    /**
     * Assign from a scaled integer with @p src_frac fractional bits:
     * shifts to this format's binary point (AP_TRN) and wraps (AP_WRAP).
     */
    void
    setScaled(Int128 v, int src_frac)
    {
        Int128 aligned = detail::shiftBy(v, fracBits - src_frac);
        Int128 wrapped = detail::wrapTo(aligned, W, Signed);
        bits = static_cast<StorageT>(static_cast<uint64_t>(wrapped) &
                                     detail::maskBits(W));
    }

    std::string
    toString() const
    {
        return std::to_string(toDouble());
    }

  private:
    void
    setFromDouble(double v)
    {
        double scaled_v = std::ldexp(v, fracBits);
        setScaled(static_cast<Int128>(std::floor(scaled_v)), fracBits);
    }

    StorageT bits;
};

/**
 * Full-precision binary operators. HLS computes a widened exact result
 * and only quantizes on assignment; we approximate by computing in a
 * generous common format, which is exact for the widths used here.
 */
template <int W, int I, bool S>
ApFixedBase<W, I, S>
operator+(ApFixedBase<W, I, S> a, const ApFixedBase<W, I, S> &b)
{
    a += b;
    return a;
}

template <int W, int I, bool S>
ApFixedBase<W, I, S>
operator-(ApFixedBase<W, I, S> a, const ApFixedBase<W, I, S> &b)
{
    a -= b;
    return a;
}

template <int W, int I, bool S>
ApFixedBase<W, I, S>
operator*(const ApFixedBase<W, I, S> &a, const ApFixedBase<W, I, S> &b)
{
    ApFixedBase<W, I, S> r;
    Int128 prod = a.scaled() * b.scaled();
    r.setScaled(prod, 2 * ApFixedBase<W, I, S>::fracBits);
    return r;
}

template <int W, int I, bool S>
ApFixedBase<W, I, S>
operator/(const ApFixedBase<W, I, S> &a, const ApFixedBase<W, I, S> &b)
{
    ApFixedBase<W, I, S> r;
    if (b.scaled() == 0) {
        r.setScaled(0, 0);
        return r;
    }
    constexpr int f = ApFixedBase<W, I, S>::fracBits;
    Int128 num = a.scaled() << f;
    Int128 q = num / b.scaled();
    r.setScaled(q, f);
    return r;
}

/** Signed fixed point (HLS-compatible alias). */
template <int W, int I>
using ap_fixed = ApFixedBase<W, I, true>;

/** Unsigned fixed point (HLS-compatible alias). */
template <int W, int I>
using ap_ufixed = ApFixedBase<W, I, false>;

} // namespace apt
} // namespace pld

#endif // PLD_APT_AP_FIXED_H
