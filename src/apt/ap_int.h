/**
 * @file
 * Memory-efficient arbitrary-precision integer types.
 *
 * Reproduces the paper's Sec 5.2 contribution: ap_int / ap_uint
 * compatible with vendor HLS semantics but using the minimum storage
 * footprint (1, 2, 4 or 8 bytes chosen from the bit width) so operator
 * code and data fit into small softcore page memories.
 *
 * Semantics follow the HLS convention: values wrap modulo 2^W on
 * assignment; mixed-width arithmetic is performed at full precision and
 * truncated on store. Widths of 1..64 bits are supported; products are
 * computed in 128-bit intermediates so no precision is lost for the
 * widths the Rosetta kernels use (<= ap_fixed<64,40>).
 */

#ifndef PLD_APT_AP_INT_H
#define PLD_APT_AP_INT_H

#include <cstdint>
#include <string>
#include <type_traits>

namespace pld {
namespace apt {

namespace detail {

/** Smallest unsigned storage type holding W bits. */
template <int W>
struct Storage
{
    static_assert(W >= 1 && W <= 64, "ap_int supports 1..64 bits");
    using type = std::conditional_t<
        (W <= 8), uint8_t,
        std::conditional_t<(W <= 16), uint16_t,
                           std::conditional_t<(W <= 32), uint32_t,
                                              uint64_t>>>;
};

/** Mask of the low W bits. */
constexpr uint64_t
maskBits(int w)
{
    return w >= 64 ? ~0ull : ((1ull << w) - 1);
}

/** Sign-extend the low w bits of v to 64 bits. */
constexpr int64_t
signExtend(uint64_t v, int w)
{
    if (w >= 64)
        return static_cast<int64_t>(v);
    uint64_t m = 1ull << (w - 1);
    v &= maskBits(w);
    return static_cast<int64_t>((v ^ m) - m);
}

} // namespace detail

template <int W, bool Signed>
class ApIntBase;

/**
 * Proxy for a contiguous bit range of an ApIntBase, supporting both
 * read (implicit conversion) and write (assignment), mirroring the HLS
 * `x(hi, lo) = ...` idiom used throughout the Rosetta kernels.
 */
template <int W, bool Signed>
class BitRange
{
  public:
    BitRange(ApIntBase<W, Signed> &owner, int hi, int lo)
        : owner(owner), hi(hi), lo(lo)
    {
    }

    /** Read the selected bits, right-aligned. */
    operator uint64_t() const;

    /** Write the selected bits from the low bits of @p v. */
    BitRange &operator=(uint64_t v);

    /** Copy bits between ranges. */
    BitRange &
    operator=(const BitRange &other)
    {
        return *this = static_cast<uint64_t>(other);
    }

  private:
    ApIntBase<W, Signed> &owner;
    int hi, lo;
};

/**
 * Fixed-width integer of W bits, signed or unsigned. The canonical
 * in-memory representation keeps only the low W bits; reads
 * sign/zero-extend as appropriate.
 */
template <int W, bool Signed>
class ApIntBase
{
  public:
    using StorageT = typename detail::Storage<W>::type;
    /** Natural C++ type produced by reads. */
    using ValueT = std::conditional_t<Signed, int64_t, uint64_t>;

    static constexpr int width = W;
    static constexpr bool isSigned = Signed;

    ApIntBase() : bits(0) {}

    /** Construct from any integer, wrapping modulo 2^W. */
    ApIntBase(int64_t v) { assignRaw(static_cast<uint64_t>(v)); }
    ApIntBase(uint64_t v) { assignRaw(v); }
    ApIntBase(int v) { assignRaw(static_cast<uint64_t>(int64_t(v))); }
    ApIntBase(unsigned v) { assignRaw(v); }
    ApIntBase(long long v) { assignRaw(static_cast<uint64_t>(v)); }
    ApIntBase(unsigned long long v) { assignRaw(v); }

    /** Construct from another width, re-wrapping. */
    template <int W2, bool S2>
    ApIntBase(const ApIntBase<W2, S2> &other)
    {
        assignRaw(static_cast<uint64_t>(other.value()));
    }

    /** Read as the natural 64-bit value (sign/zero extended). */
    ValueT
    value() const
    {
        if constexpr (Signed)
            return detail::signExtend(bits, W);
        else
            return static_cast<uint64_t>(bits);
    }

    /** Implicit conversion used in arithmetic contexts. */
    operator ValueT() const { return value(); }

    /** Raw low-W-bit pattern. */
    uint64_t raw() const { return bits; }

    /** Overwrite the raw bit pattern (wraps to W bits). */
    void
    setRaw(uint64_t v)
    {
        assignRaw(v);
    }

    /** Select bits [hi:lo] for read or write. */
    BitRange<W, Signed>
    operator()(int hi, int lo)
    {
        return BitRange<W, Signed>(*this, hi, lo);
    }

    /** Read-only bit-range select. */
    uint64_t
    range(int hi, int lo) const
    {
        uint64_t v = bits >> lo;
        return v & detail::maskBits(hi - lo + 1);
    }

    /** Single-bit read. */
    bool bit(int idx) const { return (bits >> idx) & 1; }

    /** Single-bit write. */
    void
    setBit(int idx, bool v)
    {
        uint64_t m = 1ull << idx;
        bits = static_cast<StorageT>(v ? (bits | m) : (bits & ~m));
    }

    ApIntBase &
    operator+=(const ApIntBase &o)
    {
        assignRaw(bits + o.bits);
        return *this;
    }
    ApIntBase &
    operator-=(const ApIntBase &o)
    {
        assignRaw(bits - o.bits);
        return *this;
    }
    ApIntBase &
    operator*=(const ApIntBase &o)
    {
        assignRaw(static_cast<uint64_t>(value() * o.value()));
        return *this;
    }
    ApIntBase &
    operator++()
    {
        assignRaw(bits + 1);
        return *this;
    }
    ApIntBase
    operator++(int)
    {
        ApIntBase t = *this;
        assignRaw(bits + 1);
        return t;
    }

    /** Decimal string for debugging/tests. */
    std::string toString() const { return std::to_string(value()); }

  private:
    void
    assignRaw(uint64_t v)
    {
        bits = static_cast<StorageT>(v & detail::maskBits(W));
    }

    StorageT bits;
};

template <int W, bool S>
BitRange<W, S>::operator uint64_t() const
{
    return owner.range(hi, lo);
}

template <int W, bool S>
BitRange<W, S> &
BitRange<W, S>::operator=(uint64_t v)
{
    int n = hi - lo + 1;
    uint64_t field_mask = detail::maskBits(n) << lo;
    uint64_t raw = owner.raw();
    raw = (raw & ~field_mask) | ((v << lo) & field_mask);
    owner.setRaw(raw);
    return *this;
}

/** Signed arbitrary-precision integer (HLS-compatible alias). */
template <int W>
using ap_int = ApIntBase<W, true>;

/** Unsigned arbitrary-precision integer (HLS-compatible alias). */
template <int W>
using ap_uint = ApIntBase<W, false>;

} // namespace apt
} // namespace pld

#endif // PLD_APT_AP_INT_H
