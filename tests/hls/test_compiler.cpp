#include <gtest/gtest.h>

#include "hls/compiler.h"
#include "hls/resource_model.h"
#include "hls/synthesis.h"
#include "ir/builder.h"

using namespace pld;
using namespace pld::ir;
using hls::compileOperator;
using hls::synthesize;
using netlist::ResourceCount;
using netlist::SiteKind;

namespace {

OperatorFn
makeKernel()
{
    OpBuilder b("kern");
    auto in = b.input("in");
    auto out = b.output("out");
    auto w = b.rom("w", Type::fx(16, 8), {0.5, 0.25, -1.0, 2.0});
    auto acc = b.var("acc", Type::fx(32, 17));
    b.forLoop(0, 64, [&](Ex i) {
        Ex x = b.read(in).bitcast(Type::fx(32, 17));
        b.set(acc, Ex(acc) + x * w[i % lit(4)]);
    });
    b.write(out, acc);
    return b.finish();
}

} // namespace

TEST(HlsCompiler, ProducesConsistentNetlist)
{
    auto r = compileOperator(makeKernel(), false);
    std::string problem;
    EXPECT_TRUE(r.net.checkConsistent(&problem)) << problem;
    EXPECT_GT(r.net.cells.size(), 10u);
    EXPECT_GT(r.net.nets.size(), 10u);
}

TEST(HlsCompiler, ResourcesReflectOperations)
{
    auto r = compileOperator(makeKernel(), false);
    ResourceCount res = r.net.resources();
    EXPECT_GT(res.luts, 100) << "FSM + adders + ports";
    EXPECT_GT(res.dsps, 0) << "the multiply maps to DSP";
    EXPECT_GT(res.bram18, 0) << "the ROM maps to BRAM";
}

TEST(HlsCompiler, LeafInterfaceAddsPaperOverhead)
{
    auto bare = compileOperator(makeKernel(), false);
    auto wrapped = compileOperator(makeKernel(), true);
    int64_t delta = wrapped.net.resources().luts -
                    bare.net.resources().luts;
    // Paper Sec 4.1: leaf interface ~500 LUTs.
    EXPECT_GE(delta, 450);
    EXPECT_LE(delta, 600);
}

TEST(HlsCompiler, DeterministicOutput)
{
    auto a = compileOperator(makeKernel(), true);
    auto b = compileOperator(makeKernel(), true);
    EXPECT_EQ(a.net.contentHash(), b.net.contentHash());
}

TEST(HlsCompiler, ReportMentionsSchedule)
{
    auto r = compileOperator(makeKernel(), false);
    EXPECT_NE(r.report.find("trips=64"), std::string::npos)
        << r.report;
    EXPECT_NE(r.report.find("II="), std::string::npos);
}

TEST(HlsCompiler, DivisionCostsQuadraticArea)
{
    OpBuilder b("div");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::fx(32, 17));
    b.forLoop(0, 4, [&](Ex) {
        b.set(x, b.read(in).bitcast(Type::fx(32, 17)));
        b.write(out, Ex(x) / litF(7.0, Type::fx(32, 17)));
    });
    auto div_r = compileOperator(b.finish(), false);

    OpBuilder b2("add");
    auto in2 = b2.input("in");
    auto out2 = b2.output("out");
    auto x2 = b2.var("x", Type::fx(32, 17));
    b2.forLoop(0, 4, [&](Ex) {
        b2.set(x2, b2.read(in2).bitcast(Type::fx(32, 17)));
        b2.write(out2, Ex(x2) + litF(7.0, Type::fx(32, 17)));
    });
    auto add_r = compileOperator(b2.finish(), false);

    EXPECT_GT(div_r.net.resources().luts,
              add_r.net.resources().luts + 200);
}

TEST(Synthesis, PackingReducesCells)
{
    auto r = compileOperator(makeKernel(), true);
    size_t before = r.net.cells.size();
    auto rep = synthesize(r.net);
    EXPECT_EQ(rep.cellsBefore, static_cast<int>(before));
    EXPECT_LT(rep.cellsAfter, rep.cellsBefore);
    EXPECT_GT(rep.mergesApplied, 0);
    std::string problem;
    EXPECT_TRUE(r.net.checkConsistent(&problem)) << problem;
}

TEST(Synthesis, PreservesResourceTotalsExceptPacking)
{
    auto r = compileOperator(makeKernel(), true);
    ResourceCount before = r.net.resources();
    synthesize(r.net);
    ResourceCount after = r.net.resources();
    // Packing moves LUTs between cells but never creates/destroys.
    EXPECT_EQ(before.luts, after.luts);
    EXPECT_EQ(before.ffs, after.ffs);
    EXPECT_EQ(before.dsps, after.dsps);
    EXPECT_EQ(before.bram18, after.bram18);
}

TEST(Synthesis, IdempotentAfterConvergence)
{
    auto r = compileOperator(makeKernel(), true);
    synthesize(r.net);
    auto rep2 = synthesize(r.net);
    EXPECT_LE(rep2.mergesApplied, rep2.cellsBefore / 10)
        << "second pass should find little left to pack";
}

TEST(ResourceModel, BramSizing)
{
    EXPECT_EQ(hls::bramsFor(16, 32), 1);
    EXPECT_EQ(hls::bramsFor(512, 32), 1);   // 16Kb fits one BRAM18
    EXPECT_EQ(hls::bramsFor(1024, 32), 2);  // 32Kb needs two
    EXPECT_GE(hls::bramsFor(4096, 18), 4);  // padded to 32 bits
}

TEST(ResourceModel, MulUsesDsps)
{
    auto c = hls::opCost(ExprKind::Mul, 32);
    EXPECT_GE(c.res.dsps, 1);
    auto c64 = hls::opCost(ExprKind::Mul, 64);
    EXPECT_GT(c64.res.dsps, c.res.dsps);
}
