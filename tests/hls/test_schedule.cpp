#include <gtest/gtest.h>

#include "hls/schedule.h"
#include "ir/builder.h"

using namespace pld;
using namespace pld::ir;
using hls::analyzeOperator;
using hls::exprLatency;
using hls::PerfEstimate;

namespace {

OperatorFn
streamingMac(int n)
{
    // Pipelined multiply-accumulate: classic II-limited loop.
    OpBuilder b("mac");
    auto in = b.input("in");
    auto out = b.output("out");
    auto acc = b.var("acc", Type::fx(32, 17));
    b.forLoop(0, n, [&](Ex) {
        Ex x = b.read(in).bitcast(Type::fx(32, 17));
        b.set(acc, Ex(acc) + x * litF(0.5, Type::fx(32, 17)));
    });
    b.write(out, acc);
    return b.finish();
}

OperatorFn
mapOnly(int n)
{
    // No recurrence: II should be 1.
    OpBuilder b("map");
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, n, [&](Ex) {
        Ex x = b.read(in).bitcast(Type::s(32));
        b.write(out, x + 7);
    });
    return b.finish();
}

} // namespace

TEST(Schedule, MapLoopGetsIiOne)
{
    PerfEstimate p = analyzeOperator(mapOnly(100));
    ASSERT_EQ(p.loops.size(), 1u);
    EXPECT_TRUE(p.loops[0].pipelined);
    EXPECT_EQ(p.loops[0].ii, 1);
    EXPECT_EQ(p.loops[0].trips, 100);
    // ~trips * II + depth.
    EXPECT_NEAR(p.totalCycles, 100 + p.loops[0].depth, 5);
}

TEST(Schedule, AccumulationRaisesIi)
{
    PerfEstimate p = analyzeOperator(streamingMac(100));
    ASSERT_EQ(p.loops.size(), 1u);
    EXPECT_GT(p.loops[0].ii, 1) << "acc = acc + x*c is a recurrence";
}

TEST(Schedule, DivisionDominatesLatency)
{
    OpBuilder b("divide");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::fx(32, 17));
    b.forLoop(0, 10, [&](Ex) {
        b.set(x, b.read(in).bitcast(Type::fx(32, 17)));
        b.write(out, Ex(x) / litF(3.0, Type::fx(32, 17)));
    });
    PerfEstimate p = analyzeOperator(b.finish());
    ASSERT_EQ(p.loops.size(), 1u);
    EXPECT_GT(p.loops[0].depth, 20) << "32-bit divider latency";
}

TEST(Schedule, MemoryPortsBoundIi)
{
    OpBuilder b("memhog");
    auto in = b.input("in");
    auto out = b.output("out");
    auto buf = b.array("buf", Type::s(32), 64);
    auto s = b.var("s", Type::s(32));
    b.forLoop(0, 32, [&](Ex i) {
        // Four reads of the same array per iteration: needs >= 2
        // cycles on a dual-ported BRAM.
        b.set(s, buf[i] + buf[i + 1] + buf[i + 2] + buf[i + 3]);
        b.write(out, s);
    });
    b.forLoop(0, 4, [&](Ex i) {
        b.store(buf, i, b.read(in).bitcast(Type::s(32)));
    });
    PerfEstimate p = analyzeOperator(b.finish());
    ASSERT_GE(p.loops.size(), 1u);
    EXPECT_GE(p.loops[0].ii, 2);
}

TEST(Schedule, NestedLoopMultipliesTrips)
{
    OpBuilder b("nest");
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, 10, [&](Ex) {
        b.forLoop(0, 20, [&](Ex) {
            b.write(out, b.read(in).bitcast(Type::s(32)) + 1);
        });
    });
    PerfEstimate p = analyzeOperator(b.finish());
    // Inner loop pipelined: inner ~20 cycles; outer 10x.
    EXPECT_GT(p.totalCycles, 190);
    EXPECT_LT(p.totalCycles, 500);
}

TEST(Schedule, WhileUsesTripEstimate)
{
    OpBuilder b("w");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::s(32));
    b.set(x, b.read(in).bitcast(Type::s(32)));
    b.whileLoop(Ex(x) > 0, [&] { b.set(x, Ex(x) - 1); }, 50);
    b.write(out, x);
    PerfEstimate p1 = analyzeOperator(b.finish());

    OpBuilder b2("w2");
    auto in2 = b2.input("in");
    auto out2 = b2.output("out");
    auto x2 = b2.var("x", Type::s(32));
    b2.set(x2, b2.read(in2).bitcast(Type::s(32)));
    b2.whileLoop(Ex(x2) > 0, [&] { b2.set(x2, Ex(x2) - 1); }, 500);
    b2.write(out2, x2);
    PerfEstimate p2 = analyzeOperator(b2.finish());

    EXPECT_GT(p2.totalCycles, p1.totalCycles * 5);
}

TEST(Schedule, CyclesPerOpIsSane)
{
    PerfEstimate p = analyzeOperator(mapOnly(1000));
    // Pipelined map: ~1 cycle per iteration with ~3 ops each:
    // cyclesPerOp < 1.
    EXPECT_GT(p.cyclesPerOp(), 0.01);
    EXPECT_LT(p.cyclesPerOp(), 2.0);
}

TEST(Schedule, ExprLatencyComposes)
{
    OpBuilder b("t");
    auto v = b.var("v", Type::fx(32, 17));
    Ex chain = (Ex(v) * Ex(v) + Ex(v)).cast(Type::fx(32, 17));
    // mul(3) -> add(1) -> cast(0): at least 4.
    EXPECT_GE(exprLatency(chain.node()), 4);
    Ex leaf = Ex(v);
    EXPECT_EQ(exprLatency(leaf.node()), 0);
}
