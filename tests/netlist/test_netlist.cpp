#include <gtest/gtest.h>

#include "netlist/netlist.h"

using namespace pld::netlist;

namespace {

Netlist
makeSmall()
{
    Netlist n;
    int a = n.addCell({SiteKind::Clb, "a", 8, 16, 1, 0, {}});
    int b = n.addCell({SiteKind::Clb, "b", 4, 8, 2, 0, {}});
    int d = n.addCell({SiteKind::Dsp, "m", 0, 0, 3, 0, {}});
    int r = n.addCell({SiteKind::Bram, "ram", 0, 0, 1, 0, {}});
    int n1 = n.addNet("w1", 32, a);
    n.addSink(n1, b);
    int n2 = n.addNet("w2", 32, b);
    n.addSink(n2, d);
    int n3 = n.addNet("w3", 18, d);
    n.addSink(n3, r);
    return n;
}

} // namespace

TEST(Netlist, ResourceTotals)
{
    Netlist n = makeSmall();
    ResourceCount r = n.resources();
    EXPECT_EQ(r.luts, 12);
    EXPECT_EQ(r.ffs, 24);
    EXPECT_EQ(r.dsps, 1);
    EXPECT_EQ(r.bram18, 1);
}

TEST(Netlist, CountSites)
{
    Netlist n = makeSmall();
    EXPECT_EQ(n.countSites(SiteKind::Clb), 2);
    EXPECT_EQ(n.countSites(SiteKind::Dsp), 1);
    EXPECT_EQ(n.countSites(SiteKind::Bram), 1);
}

TEST(Netlist, ConsistencyPasses)
{
    Netlist n = makeSmall();
    std::string problem;
    EXPECT_TRUE(n.checkConsistent(&problem)) << problem;
}

TEST(Netlist, OverpackedClbFlagged)
{
    Netlist n;
    n.addCell({SiteKind::Clb, "fat", 9, 0, 1, 0, {}});
    std::string problem;
    EXPECT_FALSE(n.checkConsistent(&problem));
    EXPECT_NE(problem.find("overpack"), std::string::npos);
}

TEST(Netlist, MergeOffsetsIndices)
{
    Netlist a = makeSmall();
    Netlist b = makeSmall();
    size_t cells_before = a.cells.size();
    size_t nets_before = a.nets.size();
    int off = a.merge(b, "x_");
    EXPECT_EQ(off, static_cast<int>(cells_before));
    EXPECT_EQ(a.cells.size(), cells_before * 2);
    EXPECT_EQ(a.nets.size(), nets_before * 2);
    std::string problem;
    EXPECT_TRUE(a.checkConsistent(&problem)) << problem;
    EXPECT_EQ(a.cells[cells_before].name, "x_a");
    // Merged net drivers point at merged cells.
    EXPECT_EQ(a.nets[nets_before].driver, off);
}

TEST(Netlist, HashSensitiveToStructure)
{
    Netlist a = makeSmall();
    Netlist b = makeSmall();
    EXPECT_EQ(a.contentHash(), b.contentHash());
    b.cells[0].luts = 7;
    EXPECT_NE(a.contentHash(), b.contentHash());
}

TEST(ResourceCount, CoversAndAdd)
{
    ResourceCount big{100, 200, 10, 5};
    ResourceCount small{50, 100, 10, 5};
    EXPECT_TRUE(big.covers(small));
    EXPECT_FALSE(small.covers(big));
    ResourceCount sum = big + small;
    EXPECT_EQ(sum.luts, 150);
    EXPECT_EQ(sum.bram18, 20);
}
