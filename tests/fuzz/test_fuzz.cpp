/**
 * @file
 * The pldfuzz subsystem's own test suite: generator determinism and
 * validator-cleanliness over many seeds, four-backend differential
 * agreement (golden, HLS system-sim, -O0 ISS, -Os ISS),
 * injected-bug catch + shrink, corpus replay, and
 * fault-ladder / parallel-build equivalence. Labelled `fuzz` in CTest
 * so CI can run the family standalone.
 */

#include <gtest/gtest.h>

#include "fuzz/corpus.h"
#include "fuzz/diff.h"
#include "fuzz/gen.h"
#include "fuzz/mutate.h"
#include "fuzz/shrink.h"
#include "ir/printer.h"
#include "ir/validate.h"

#ifndef PLD_FUZZ_CORPUS_DIR
#define PLD_FUZZ_CORPUS_DIR "tests/fuzz/corpus"
#endif

using namespace pld;

TEST(FuzzGen, DeterministicAcrossCalls)
{
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        fuzz::GenCase a = fuzz::generateCase(seed);
        fuzz::GenCase b = fuzz::generateCase(seed);
        EXPECT_EQ(a.dump(), b.dump()) << "seed " << seed;
    }
}

TEST(FuzzGen, ValidatorCleanManySeeds)
{
    for (uint64_t seed = 1; seed <= 300; ++seed) {
        fuzz::GenCase c = fuzz::generateCase(seed);
        auto diags = ir::validateGraph(c.graph);
        EXPECT_TRUE(ir::isClean(diags))
            << "seed " << seed << ":\n"
            << c.dump();
    }
}

TEST(FuzzGen, CoversMultiOperatorShapes)
{
    size_t maxOps = 0, minOps = 99;
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        fuzz::GenCase c = fuzz::generateCase(seed);
        maxOps = std::max(maxOps, c.graph.ops.size());
        minOps = std::min(minOps, c.graph.ops.size());
    }
    EXPECT_EQ(minOps, 1u);
    EXPECT_GE(maxOps, 3u); // chains and diamonds appear
}

TEST(FuzzDiff, FourBackendsAgreeManySeeds)
{
    fuzz::DiffOptions d;
    for (uint64_t seed = 1; seed <= 120; ++seed) {
        fuzz::GenCase c = fuzz::generateCase(seed);
        fuzz::DiffResult r = fuzz::diffCase(c, d);
        EXPECT_EQ(r.status, fuzz::DiffStatus::Pass)
            << "seed " << seed << ": " << r.detail << "\n"
            << c.dump();
    }
}

/** The -Os leg alone must catch a codegen-visible bug: proves the
    optimizing tier is genuinely cross-checked, not shadowed by the
    -O0 leg reporting first. */
TEST(FuzzDiff, OsLegAloneCatchesInjectedBug)
{
    fuzz::DiffOptions d;
    d.runIss = false; // only golden + sys + iss-Os
    d.bug = fuzz::InjectedBug::DropSignExtend;
    bool caught = false;
    for (uint64_t seed = 1; seed <= 60 && !caught; ++seed) {
        fuzz::GenCase c = fuzz::generateCase(seed);
        fuzz::DiffResult r = fuzz::diffCase(c, d);
        if (r.status == fuzz::DiffStatus::Mismatch) {
            EXPECT_EQ(r.detail.rfind("iss-Os", 0), 0u) << r.detail;
            caught = true;
        }
    }
    EXPECT_TRUE(caught)
        << "flipped sign-extension escaped 60 -Os fuzz cases";
}

TEST(FuzzRoundTrip, GeneratedOperatorsReparse)
{
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        fuzz::GenCase c = fuzz::generateCase(seed);
        for (const auto &op : c.graph.ops) {
            std::string printed = ir::printOperator(op.fn);
            ir::OperatorFn back = ir::parseOperator(printed);
            EXPECT_EQ(printed, ir::printOperator(back))
                << "seed " << seed << " op " << op.fn.name;
            EXPECT_EQ(op.fn.contentHash(), back.contentHash())
                << "seed " << seed << " op " << op.fn.name;
        }
    }
}

/** Scan seeds for the first case the injected bug makes diverge. */
static bool
findMismatch(fuzz::InjectedBug bug, uint64_t max_seed,
             fuzz::GenCase *found, fuzz::DiffOptions *d_out)
{
    fuzz::DiffOptions d;
    d.bug = bug;
    for (uint64_t seed = 1; seed <= max_seed; ++seed) {
        fuzz::GenCase c = fuzz::generateCase(seed);
        if (fuzz::diffCase(c, d).status == fuzz::DiffStatus::Mismatch) {
            *found = c;
            *d_out = d;
            return true;
        }
    }
    return false;
}

TEST(FuzzBug, DropSignExtendCaughtAndShrunk)
{
    fuzz::GenCase c;
    fuzz::DiffOptions d;
    ASSERT_TRUE(
        findMismatch(fuzz::InjectedBug::DropSignExtend, 60, &c, &d))
        << "flipped sign-extension escaped 60 fuzz cases";

    fuzz::ShrinkStats ss;
    fuzz::GenCase small = fuzz::shrinkCase(
        c,
        [&](const fuzz::GenCase &cand) {
            return fuzz::diffCase(cand, d).status ==
                   fuzz::DiffStatus::Mismatch;
        },
        2000, &ss);

    ASSERT_EQ(small.graph.ops.size(), 1u);
    EXPECT_LE(fuzz::stmtCount(small.graph.ops[0].fn), 10)
        << small.dump();
    // Still a repro with the bug, and clean without it.
    EXPECT_EQ(fuzz::diffCase(small, d).status,
              fuzz::DiffStatus::Mismatch);
    fuzz::DiffOptions clean;
    EXPECT_EQ(fuzz::diffCase(small, clean).status,
              fuzz::DiffStatus::Pass);
}

TEST(FuzzBug, SubToAddCaught)
{
    fuzz::GenCase c;
    fuzz::DiffOptions d;
    EXPECT_TRUE(findMismatch(fuzz::InjectedBug::SubToAdd, 40, &c, &d))
        << "sub-to-add mutation escaped 40 fuzz cases";
}

TEST(FuzzCorpus, ReplayAllReprosPass)
{
    auto files = fuzz::listCorpusFiles(PLD_FUZZ_CORPUS_DIR);
    ASSERT_FALSE(files.empty())
        << "no .pldfuzz files under " << PLD_FUZZ_CORPUS_DIR;
    fuzz::DiffOptions d;
    for (const auto &f : files) {
        fuzz::GenCase c = fuzz::loadCorpusFile(f);
        fuzz::DiffResult r = fuzz::diffCase(c, d);
        EXPECT_EQ(r.status, fuzz::DiffStatus::Pass)
            << f << ": " << r.detail;
    }
}

TEST(FuzzCorpus, SerializeParseRoundTrip)
{
    // Find a single-operator case (corpus entries are single-op).
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        fuzz::GenCase c = fuzz::generateCase(seed);
        if (c.graph.ops.size() != 1)
            continue;
        std::string text = fuzz::serializeCase(c, "round trip");
        fuzz::GenCase back = fuzz::parseCaseText(text);
        EXPECT_EQ(c.seed, back.seed);
        EXPECT_EQ(c.inputs, back.inputs);
        EXPECT_EQ(ir::printOperator(c.graph.ops[0].fn),
                  ir::printOperator(back.graph.ops[0].fn));
        return;
    }
    FAIL() << "no single-operator case in 40 seeds";
}

TEST(FuzzLadder, FaultRungsStayEquivalent)
{
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        fuzz::GenCase c = fuzz::generateCase(seed);
        fuzz::DiffResult r = fuzz::checkFaultLadder(c, seed);
        EXPECT_EQ(r.status, fuzz::DiffStatus::Pass)
            << "seed " << seed << ": " << r.detail;
    }
}

TEST(FuzzLadder, ParallelBuildsDeterministic)
{
    for (uint64_t seed = 1; seed <= 2; ++seed) {
        fuzz::GenCase c = fuzz::generateCase(seed);
        fuzz::DiffResult r = fuzz::checkBuildDeterminism(c, seed);
        EXPECT_EQ(r.status, fuzz::DiffStatus::Pass)
            << "seed " << seed << ": " << r.detail;
    }
}
