/**
 * @file
 * Property tests for the arbitrary-precision types against plain
 * 64/128-bit reference arithmetic, driven by the seeded common Rng so
 * failures reproduce bit-for-bit. The references are written
 * independently of the apt implementation (mask + extend only).
 */

#include <gtest/gtest.h>

#include "apt/ap_fixed.h"
#include "apt/ap_int.h"
#include "common/rng.h"

using namespace pld;
using namespace pld::apt;

namespace {

using I128 = __int128;

uint64_t
refMask(int w)
{
    return w >= 64 ? ~0ull : ((1ull << w) - 1);
}

/** Canonical value of the low @p w bits of @p raw. */
int64_t
refValue(uint64_t raw, int w, bool sgn)
{
    raw &= refMask(w);
    if (sgn && w < 64) {
        uint64_t m = 1ull << (w - 1);
        return static_cast<int64_t>((raw ^ m) - m);
    }
    return static_cast<int64_t>(raw);
}

/** AP_TRN shift + AP_WRAP to the target format, in 128 bits. */
uint64_t
refRequantize(I128 scaled, int dst_frac, int src_frac, int w)
{
    I128 aligned = (dst_frac >= src_frac)
                       ? scaled << (dst_frac - src_frac)
                       : scaled >> (src_frac - dst_frac);
    return static_cast<uint64_t>(aligned) & refMask(w);
}

template <int W, bool S>
void
checkIntProperties(uint64_t seed)
{
    Rng rng(seed);
    for (int i = 0; i < 2000; ++i) {
        uint64_t ra = rng.next(), rb = rng.next();
        ApIntBase<W, S> a(ra), b(rb);

        // Construction wraps to W bits; reads canonicalize.
        EXPECT_EQ(a.raw(), ra & refMask(W));
        EXPECT_EQ(static_cast<int64_t>(a.value()), refValue(ra, W, S));

        // Modular add/sub/mul.
        ApIntBase<W, S> s = a;
        s += b;
        EXPECT_EQ(s.raw(), (ra + rb) & refMask(W));
        ApIntBase<W, S> d = a;
        d -= b;
        EXPECT_EQ(d.raw(), (ra - rb) & refMask(W));
        ApIntBase<W, S> m = a;
        m *= b;
        EXPECT_EQ(m.raw(),
                  static_cast<uint64_t>(refValue(ra, W, S) *
                                        refValue(rb, W, S)) &
                      refMask(W));

        // Bit-range reads agree with plain shifts.
        if (W > 1) {
            int lo = static_cast<int>(rng.below(W));
            int hi = lo + static_cast<int>(rng.below(
                              static_cast<uint64_t>(W - lo)));
            EXPECT_EQ(a.range(hi, lo),
                      (a.raw() >> lo) & refMask(hi - lo + 1));
        }
    }
}

template <int W1, bool S1, int W2, bool S2>
void
checkIntConversion(uint64_t seed)
{
    Rng rng(seed);
    for (int i = 0; i < 2000; ++i) {
        uint64_t r = rng.next();
        ApIntBase<W1, S1> a(r);
        ApIntBase<W2, S2> b(a);
        EXPECT_EQ(b.raw(), static_cast<uint64_t>(
                               refValue(r, W1, S1)) &
                               refMask(W2));
    }
}

template <int W, int I, bool S>
void
checkFixedProperties(uint64_t seed)
{
    using F = ApFixedBase<W, I, S>;
    constexpr int FR = F::fracBits;
    Rng rng(seed);
    for (int i = 0; i < 2000; ++i) {
        uint64_t ra = rng.next(), rb = rng.next();
        F a = F::fromRaw(ra), b = F::fromRaw(rb);
        I128 sa = refValue(ra, W, S), sb = refValue(rb, W, S);
        if (!S) {
            sa = static_cast<I128>(ra & refMask(W));
            sb = static_cast<I128>(rb & refMask(W));
        }

        EXPECT_EQ(static_cast<int64_t>(a.scaled()),
                  static_cast<int64_t>(sa));

        F sum = a;
        sum += b;
        EXPECT_EQ(sum.raw(), refRequantize(sa + sb, FR, FR, W));
        F dif = a;
        dif -= b;
        EXPECT_EQ(dif.raw(), refRequantize(sa - sb, FR, FR, W));
        F prd = a * b;
        EXPECT_EQ(prd.raw(), refRequantize(sa * sb, FR, 2 * FR, W));
        if (sb != 0) {
            F quo = a / b;
            EXPECT_EQ(quo.raw(),
                      refRequantize((sa << FR) / sb, FR, FR, W));
        }

        // Ordering matches the scaled-integer ordering.
        EXPECT_EQ(a < b, sa < sb);
        EXPECT_EQ(a >= b, sa >= sb);
    }
}

template <int W1, int I1, bool S1, int W2, int I2, bool S2>
void
checkFixedConversion(uint64_t seed)
{
    using F1 = ApFixedBase<W1, I1, S1>;
    using F2 = ApFixedBase<W2, I2, S2>;
    Rng rng(seed);
    for (int i = 0; i < 2000; ++i) {
        uint64_t r = rng.next();
        F1 a = F1::fromRaw(r);
        F2 b(a);
        I128 s = S1 ? static_cast<I128>(refValue(r, W1, S1))
                    : static_cast<I128>(r & refMask(W1));
        EXPECT_EQ(b.raw(),
                  refRequantize(s, F2::fracBits, F1::fracBits, W2));
    }
}

} // namespace

TEST(AptProperty, IntWidthsSigned)
{
    checkIntProperties<1, true>(11);
    checkIntProperties<5, true>(12);
    checkIntProperties<8, true>(13);
    checkIntProperties<17, true>(14);
    checkIntProperties<32, true>(15);
    checkIntProperties<33, true>(16);
    checkIntProperties<63, true>(17);
    checkIntProperties<64, true>(18);
}

TEST(AptProperty, IntWidthsUnsigned)
{
    checkIntProperties<1, false>(21);
    checkIntProperties<7, false>(22);
    checkIntProperties<16, false>(23);
    checkIntProperties<24, false>(24);
    checkIntProperties<32, false>(25);
    checkIntProperties<48, false>(26);
    checkIntProperties<64, false>(27);
}

TEST(AptProperty, IntConversions)
{
    checkIntConversion<32, true, 12, false>(31);
    checkIntConversion<12, false, 32, true>(32);
    checkIntConversion<64, true, 31, true>(33);
    checkIntConversion<8, true, 64, false>(34);
    checkIntConversion<17, false, 17, true>(35);
}

TEST(AptProperty, FixedFormats)
{
    checkFixedProperties<8, 4, true>(41);
    checkFixedProperties<16, 8, false>(42);
    checkFixedProperties<24, 12, true>(43);
    checkFixedProperties<32, 9, true>(44);
    checkFixedProperties<20, 4, false>(45);
    checkFixedProperties<32, 2, true>(46);
}

TEST(AptProperty, FixedConversions)
{
    checkFixedConversion<32, 9, true, 16, 8, true>(51);
    checkFixedConversion<16, 8, true, 32, 9, true>(52);
    checkFixedConversion<24, 12, false, 24, 4, true>(53);
    checkFixedConversion<20, 4, true, 20, 16, false>(54);
    checkFixedConversion<8, 8, true, 32, 1, true>(55);
}
