#include <gtest/gtest.h>

#include "apt/ap_fixed.h"

using namespace pld::apt;

TEST(ApFixed, StorageIsMinimal)
{
    EXPECT_EQ(sizeof(ap_fixed<8, 4>), 1u);
    EXPECT_EQ(sizeof(ap_fixed<16, 8>), 2u);
    EXPECT_EQ(sizeof(ap_fixed<32, 17>), 4u);
    EXPECT_EQ(sizeof(ap_fixed<64, 40>), 8u);
}

TEST(ApFixed, RoundTripSimpleValues)
{
    ap_fixed<32, 17> x = 3.25;
    EXPECT_DOUBLE_EQ(x.toDouble(), 3.25);
    ap_fixed<32, 17> y = -1.5;
    EXPECT_DOUBLE_EQ(y.toDouble(), -1.5);
}

TEST(ApFixed, TruncationTowardNegInfinity)
{
    // AP_TRN: value snaps down to the grid.
    ap_fixed<8, 6> x = 1.3; // grid 0.25
    EXPECT_DOUBLE_EQ(x.toDouble(), 1.25);
    ap_fixed<8, 6> y = -1.3;
    EXPECT_DOUBLE_EQ(y.toDouble(), -1.5);
}

TEST(ApFixed, AddSub)
{
    ap_fixed<32, 17> a = 2.5, b = 0.75;
    EXPECT_DOUBLE_EQ((a + b).toDouble(), 3.25);
    EXPECT_DOUBLE_EQ((a - b).toDouble(), 1.75);
}

TEST(ApFixed, Multiply)
{
    ap_fixed<32, 17> a = 1.5, b = -2.25;
    EXPECT_DOUBLE_EQ((a * b).toDouble(), -3.375);
}

TEST(ApFixed, Divide)
{
    ap_fixed<32, 17> a = 3.0, b = 2.0;
    EXPECT_DOUBLE_EQ((a / b).toDouble(), 1.5);
    ap_fixed<32, 17> z = 0.0;
    EXPECT_DOUBLE_EQ((a / z).toDouble(), 0.0) << "div-by-zero is 0";
}

TEST(ApFixed, WrapOnOverflow)
{
    ap_fixed<8, 4> a = 7.5; // max for <8,4> is 7.9375
    ap_fixed<8, 4> b = 1.0;
    ap_fixed<8, 4> s = a + b; // 8.5 wraps
    EXPECT_LT(s.toDouble(), 0.0);
}

TEST(ApFixed, FormatConversion)
{
    ap_fixed<32, 17> x = 5.75;
    ap_fixed<16, 8> y = x;
    EXPECT_DOUBLE_EQ(y.toDouble(), 5.75);
    ap_fixed<8, 6> z = x; // loses fractional precision to 0.25 grid
    EXPECT_DOUBLE_EQ(z.toDouble(), 5.75);
}

TEST(ApFixed, RawBitCastMatchesHlsIdiom)
{
    // The paper's t[i](31,0) = Input.read() idiom: move raw words.
    ap_fixed<32, 17> x = -7.125;
    uint64_t raw = x.range(31, 0);
    ap_fixed<32, 17> y = ap_fixed<32, 17>::fromRaw(raw);
    EXPECT_EQ(x, y);
}

TEST(ApFixed, SetRangePartial)
{
    ap_fixed<32, 17> x = 0.0;
    x.setRange(31, 0, ap_fixed<32, 17>(2.5).raw());
    EXPECT_DOUBLE_EQ(x.toDouble(), 2.5);
}

TEST(ApFixed, ComparisonOperators)
{
    ap_fixed<16, 8> a = 1.25, b = 2.5;
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b > a);
    EXPECT_TRUE(a <= a);
    EXPECT_TRUE(a >= a);
    EXPECT_TRUE(a != b);
    EXPECT_FALSE(a == b);
}

TEST(ApFixed, NegativeDivTruncatesTowardZero)
{
    ap_fixed<32, 17> a = -3.0, b = 2.0;
    EXPECT_DOUBLE_EQ((a / b).toDouble(), -1.5);
}

TEST(ApFixed, UnsignedVariant)
{
    ap_ufixed<16, 8> a = 3.5, b = 1.25;
    EXPECT_DOUBLE_EQ((a + b).toDouble(), 4.75);
    EXPECT_DOUBLE_EQ((a * b).toDouble(), 4.375);
}

TEST(ApFixed, PaperFlowCalcExpression)
{
    // denom = t1*t2 - t4*t4 with the flow_calc types.
    using fx = ap_fixed<32, 17>;
    fx t1 = 2.5, t2 = 4.0, t4 = 1.5;
    fx denom = t1 * t2 - t4 * t4;
    EXPECT_DOUBLE_EQ(denom.toDouble(), 10.0 - 2.25);
}
