#include <gtest/gtest.h>

#include "apt/ap_int.h"

using namespace pld::apt;

TEST(ApInt, StorageIsMinimal)
{
    EXPECT_EQ(sizeof(ap_uint<7>), 1u);
    EXPECT_EQ(sizeof(ap_uint<8>), 1u);
    EXPECT_EQ(sizeof(ap_uint<9>), 2u);
    EXPECT_EQ(sizeof(ap_int<16>), 2u);
    EXPECT_EQ(sizeof(ap_int<17>), 4u);
    EXPECT_EQ(sizeof(ap_uint<32>), 4u);
    EXPECT_EQ(sizeof(ap_int<33>), 8u);
    EXPECT_EQ(sizeof(ap_uint<64>), 8u);
}

TEST(ApInt, UnsignedWraps)
{
    ap_uint<8> x = 250;
    x += ap_uint<8>(10);
    EXPECT_EQ(x.value(), 4u);
}

TEST(ApInt, SignedWrapsAndExtends)
{
    ap_int<8> x = 127;
    ++x;
    EXPECT_EQ(x.value(), -128);
    ap_int<4> y = -1;
    EXPECT_EQ(y.value(), -1);
    EXPECT_EQ(y.raw(), 0xFu);
}

TEST(ApInt, CrossWidthConversion)
{
    ap_int<16> wide = -300;
    ap_int<8> narrow = wide;
    // -300 = 0xFED4; low 8 bits 0xD4 = -44.
    EXPECT_EQ(narrow.value(), -44);
    ap_uint<16> uw = narrow;
    EXPECT_EQ(uw.value(), 0xFFD4u);
}

TEST(ApInt, BitRangeReadWrite)
{
    ap_uint<32> x = 0;
    x(15, 8) = 0xAB;
    EXPECT_EQ(x.value(), 0xAB00u);
    EXPECT_EQ(x.range(15, 8), 0xABu);
    x(3, 0) = 0xF;
    EXPECT_EQ(x.value(), 0xAB0Fu);
}

TEST(ApInt, SingleBitOps)
{
    ap_uint<8> x = 0;
    x.setBit(3, true);
    EXPECT_TRUE(x.bit(3));
    EXPECT_EQ(x.value(), 8u);
    x.setBit(3, false);
    EXPECT_EQ(x.value(), 0u);
}

TEST(ApInt, OneBitType)
{
    ap_uint<1> b = 1;
    EXPECT_EQ(b.value(), 1u);
    b += ap_uint<1>(1);
    EXPECT_EQ(b.value(), 0u);
}

TEST(ApInt, MultiplyWraps)
{
    ap_uint<8> a = 16, b = 17;
    a *= b;
    EXPECT_EQ(a.value(), (16 * 17) % 256u);
}

TEST(ApInt, ArithmeticInExpressions)
{
    ap_int<12> a = 100;
    ap_int<12> b = 23;
    int64_t s = a + b; // via implicit conversion
    EXPECT_EQ(s, 123);
}
