/**
 * Unit tests for the observability subsystem in isolation: span
 * RAII (including unwinding through exceptions), logical parenting
 * across threads, counter/distribution math against hand-computed
 * values, the structural-vs-scheduling event split, and the Chrome
 * trace-event export checked by the same JSON validator that
 * `pldtrace --check` uses in CI.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

using namespace pld;
using namespace pld::obs;

namespace {

/** Flat (cat, name) index of everything the tracer recorded. */
std::map<std::string, const Event *>
eventsByName(const Tracer &t)
{
    std::map<std::string, const Event *> by;
    for (const Event *e : t.allEvents())
        by[e->name] = e;
    return by;
}

} // namespace

// -------- fast path / disabled behaviour ----------------------------

TEST(Trace, DisabledPathIsInert)
{
    // Force the mode decision past the env check, then uninstall.
    Tracer::current();
    Tracer *prev = Tracer::install(nullptr);

    EXPECT_FALSE(active());
    EXPECT_EQ(currentSpan(), 0u);
    {
        Span s("test", "should-not-record");
        EXPECT_EQ(s.id(), 0u);
        s.arg("k", int64_t(1)); // must not crash
    }
    count("test.counter", 5);
    gauge("test.gauge", 1.0);
    record("test.dist", 2.0);
    instant("test", "i").arg("k", int64_t(1));

    // A window opened while disabled snapshots as empty/disabled.
    auto w = beginWindow();
    MetricsSnapshot snap = endWindow(w);
    EXPECT_FALSE(snap.enabled);
    EXPECT_TRUE(snap.counters.empty());

    Tracer::install(prev);
}

// -------- span RAII and nesting -------------------------------------

TEST(Trace, SpanNestingLinksParents)
{
    ScopedTracer st;
    {
        Span outer("test", "outer");
        ASSERT_NE(outer.id(), 0u);
        EXPECT_EQ(currentSpan(), outer.id());
        {
            Span mid("test", "mid");
            Span inner("test", "inner");
            EXPECT_EQ(currentSpan(), inner.id());
        }
        EXPECT_EQ(currentSpan(), outer.id());
    }
    EXPECT_EQ(currentSpan(), 0u);

    auto by = eventsByName(st.tracer());
    ASSERT_TRUE(by.count("outer") && by.count("mid") &&
                by.count("inner"));
    EXPECT_EQ(by["outer"]->parent, 0u);
    EXPECT_EQ(by["mid"]->parent, by["outer"]->id);
    EXPECT_EQ(by["inner"]->parent, by["mid"]->id);
    for (const char *n : {"outer", "mid", "inner"}) {
        EXPECT_FALSE(by[n]->open) << n << " must be closed";
        EXPECT_GE(by[n]->durUs, 0.0) << n;
    }
}

TEST(Trace, SpansCloseWhenExceptionsUnwind)
{
    ScopedTracer st;
    try {
        Span outer("test", "outer");
        Span inner("test", "inner");
        throw std::runtime_error("compile blew up");
    } catch (const std::runtime_error &) {
    }

    EXPECT_EQ(currentSpan(), 0u) << "stack must unwind fully";
    for (const Event *e : st.tracer().allEvents()) {
        EXPECT_FALSE(e->open)
            << e->name << " left open after unwind";
    }
    // A well-formed trace after the throw: the validator sees only
    // complete events.
    std::ostringstream os;
    st.tracer().writeChromeTrace(os);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, err)) << err;
    EXPECT_TRUE(json::checkChromeTrace(doc, err)) << err;
}

TEST(Trace, ExplicitParentSurvivesThreadHop)
{
    ScopedTracer st;
    uint64_t worker_span = 0;
    {
        Span build("test", "build");
        uint64_t tok = currentSpan();
        std::thread worker([&] {
            Span s("test", "worker", tok);
            worker_span = s.id();
            // On the worker the auto-parent is the worker span, not
            // anything from the spawning thread.
            Span auto_child("test", "auto-child");
            EXPECT_EQ(currentSpan(), auto_child.id());
        });
        worker.join();
    }
    auto by = eventsByName(st.tracer());
    ASSERT_TRUE(by.count("build") && by.count("worker") &&
                by.count("auto-child"));
    EXPECT_EQ(by["worker"]->parent, by["build"]->id)
        << "logical parent token must survive the thread hop";
    EXPECT_EQ(by["auto-child"]->parent, worker_span);
}

TEST(Trace, SpanArgsAreRecorded)
{
    ScopedTracer st;
    {
        Span s("test", "with-args");
        s.arg("op", "flow_calc").arg("cells", int64_t(42));
        s.arg("eff", 1.5);
    }
    auto by = eventsByName(st.tracer());
    ASSERT_TRUE(by.count("with-args"));
    const Event *e = by["with-args"];
    ASSERT_EQ(e->args.size(), 3u);
    EXPECT_EQ(e->args[0].key, "op");
    EXPECT_EQ(e->args[0].val, "flow_calc");
    EXPECT_TRUE(e->args[0].quoted);
    EXPECT_EQ(e->args[1].key, "cells");
    EXPECT_EQ(e->args[1].val, "42");
    EXPECT_FALSE(e->args[1].quoted);
    EXPECT_EQ(e->args[2].key, "eff");
    EXPECT_FALSE(e->args[2].quoted);
}

// -------- structural hash -------------------------------------------

TEST(Trace, StructureHashIgnoresSchedEvents)
{
    auto run = [](bool with_sched) {
        ScopedTracer st;
        {
            Span a("pld", "build");
            {
                Span b("pnr", "route");
                if (with_sched) {
                    // Scheduling-dependent: lane spans + instants in
                    // category "sched", marked non-structural.
                    Span lane("sched", "lane", kAutoParent,
                              /*structural=*/false);
                    instant("sched", "cache.hit",
                            /*structural=*/false);
                }
                Span c("pnr", "iter");
            }
        }
        return st.tracer().structureHash();
    };
    uint64_t bare = run(false);
    uint64_t sched = run(true);
    EXPECT_EQ(bare, sched)
        << "sched events must not perturb the structure hash";
}

TEST(Trace, StructureHashSeesShapeNamesAndArgs)
{
    auto run = [](const char *inner, int64_t arg_v, bool nested) {
        ScopedTracer st;
        if (nested) {
            Span a("t", "outer");
            Span b("t", inner);
            b.arg("v", arg_v);
        } else {
            // Same two events as siblings instead of parent/child.
            { Span a("t", "outer"); }
            Span b("t", inner);
            b.arg("v", arg_v);
        }
        return st.tracer().structureHash();
    };
    uint64_t base = run("inner", 1, true);
    EXPECT_NE(base, run("other", 1, true)) << "name must matter";
    EXPECT_NE(base, run("inner", 2, true)) << "args must matter";
    EXPECT_NE(base, run("inner", 1, false)) << "shape must matter";
    EXPECT_EQ(base, run("inner", 1, true)) << "must be reproducible";
}

TEST(Trace, NonStructuralChildrenReparentThroughSchedSpans)
{
    // build > sched-lane(non-structural) > work  must hash the same
    // as  build > work : the lane is transparent.
    auto run = [](bool via_lane) {
        ScopedTracer st;
        {
            Span a("pld", "build");
            if (via_lane) {
                Span lane("sched", "lane", kAutoParent, false);
                Span w("pnr", "work");
            } else {
                Span w("pnr", "work");
            }
        }
        return st.tracer().structureHash();
    };
    EXPECT_EQ(run(true), run(false));
}

// -------- counters, gauges, distributions ---------------------------

TEST(Metrics, CounterMathAndWindows)
{
    ScopedTracer st;
    count("c.x", 3);
    auto w = beginWindow();
    count("c.x", 4);
    count("c.x");
    count("c.y", -2);
    MetricsSnapshot delta = endWindow(w);
    EXPECT_TRUE(delta.enabled);
    EXPECT_EQ(delta.counter("c.x"), 5) << "window must be a delta";
    EXPECT_EQ(delta.counter("c.y"), -2);
    EXPECT_EQ(delta.counter("c.missing", 7), 7);

    MetricsSnapshot total = st.tracer().metrics().snapshot();
    EXPECT_EQ(total.counter("c.x"), 8);
}

TEST(Metrics, DistributionSummaryMatchesHandComputed)
{
    ScopedTracer st;
    // 1..100 shuffled-ish (record order must not matter).
    for (int i = 100; i >= 1; --i)
        record("d.t", double(i));
    MetricsSnapshot s = st.tracer().metrics().snapshot();
    const DistSummary *d = s.dist("d.t");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->count, 100u);
    EXPECT_DOUBLE_EQ(d->sum, 5050.0);
    EXPECT_DOUBLE_EQ(d->mean(), 50.5);
    EXPECT_DOUBLE_EQ(d->min, 1.0);
    EXPECT_DOUBLE_EQ(d->p50, 50.0); // nearest rank: ceil(.5*100)=50
    EXPECT_DOUBLE_EQ(d->p95, 95.0); // ceil(.95*100)=95
    EXPECT_DOUBLE_EQ(d->max, 100.0);
    ASSERT_EQ(d->samples.size(), 100u);
    EXPECT_TRUE(std::is_sorted(d->samples.begin(),
                               d->samples.end()));
}

TEST(Metrics, DistributionSmallSampleQuantiles)
{
    DistSummary one = summarize({3.0});
    EXPECT_DOUBLE_EQ(one.p50, 3.0);
    EXPECT_DOUBLE_EQ(one.p95, 3.0);

    DistSummary two = summarize({2.0, 1.0});
    EXPECT_DOUBLE_EQ(two.min, 1.0);
    EXPECT_DOUBLE_EQ(two.p50, 1.0); // ceil(.5*2)=1 -> first
    EXPECT_DOUBLE_EQ(two.p95, 2.0); // ceil(.95*2)=2 -> second
    EXPECT_DOUBLE_EQ(two.max, 2.0);

    DistSummary none = summarize({});
    EXPECT_EQ(none.count, 0u);
    EXPECT_DOUBLE_EQ(none.mean(), 0.0);
}

TEST(Metrics, SchedCountersExcludedFromDeterminism)
{
    ScopedTracer st;
    count("cache.hits", 2);
    MetricsSnapshot a = st.tracer().metrics().snapshot();
    uint64_t h = a.countersHash();

    count("sched.cache.waits", 9);
    MetricsSnapshot b = st.tracer().metrics().snapshot();
    EXPECT_EQ(b.counter("sched.cache.waits"), 9)
        << "sched counters are still recorded";
    EXPECT_EQ(b.countersHash(), h)
        << "but must not perturb the determinism hash";
    auto det = b.deterministicCounters();
    EXPECT_EQ(det.count("sched.cache.waits"), 0u);
    EXPECT_EQ(det.at("cache.hits"), 2);

    count("cache.hits");
    EXPECT_NE(st.tracer().metrics().snapshot().countersHash(), h)
        << "deterministic counters must perturb it";
}

TEST(Metrics, GaugesLastWriteWins)
{
    ScopedTracer st;
    gauge("g.x", 1.0);
    gauge("g.x", 42.5);
    MetricsSnapshot s = st.tracer().metrics().snapshot();
    EXPECT_DOUBLE_EQ(s.gauge("g.x"), 42.5);
}

// -------- Chrome trace export + validator ---------------------------

TEST(Export, ChromeTraceSchemaRoundTrip)
{
    ScopedTracer st;
    {
        Span a("pld", "build");
        a.arg("level", "o1").arg("ops", int64_t(2));
        {
            Span b("hls", "hls.compile");
            instant("cache", "cache.corrupt_recompile")
                .arg("op", std::string("flow_calc"));
        }
        flowStart("sys", "sys.dma.in", 1).arg("words", int64_t(64));
        flowFinish("sys", "sys.dma.in", 1);
    }
    std::ostringstream os;
    st.tracer().writeChromeTrace(os);

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, err)) << err;
    ASSERT_TRUE(json::checkChromeTrace(doc, err)) << err;

    // Every recorded event appears (plus per-thread metadata).
    const json::Value *evs = doc.get("traceEvents");
    ASSERT_NE(evs, nullptr);
    size_t meta = 0, x = 0, inst = 0, flow = 0;
    for (const auto &e : evs->arr) {
        const std::string &ph = e.get("ph")->str;
        if (ph == "M")
            ++meta;
        else if (ph == "X")
            ++x;
        else if (ph == "i")
            ++inst;
        else if (ph == "s" || ph == "f")
            ++flow;
    }
    EXPECT_EQ(x, 2u);
    EXPECT_EQ(inst, 1u);
    EXPECT_EQ(flow, 2u);
    EXPECT_GE(meta, 1u);
}

TEST(Export, ValidatorRejectsMalformedTraces)
{
    auto check = [](const char *text, std::string *why) {
        json::Value doc;
        std::string err;
        if (!json::parse(text, doc, err)) {
            *why = "parse: " + err;
            return false;
        }
        bool ok = json::checkChromeTrace(doc, err);
        *why = err;
        return ok;
    };
    std::string why;
    // Unmatched B.
    EXPECT_FALSE(check(R"({"traceEvents":[
        {"ph":"B","name":"a","cat":"t","pid":1,"tid":1,"ts":0}
    ]})",
                       &why))
        << why;
    // E without B.
    EXPECT_FALSE(check(R"({"traceEvents":[
        {"ph":"E","name":"a","cat":"t","pid":1,"tid":1,"ts":0}
    ]})",
                       &why));
    // Negative duration.
    EXPECT_FALSE(check(R"({"traceEvents":[
        {"ph":"X","name":"a","cat":"t","pid":1,"tid":1,"ts":5,
         "dur":-1}
    ]})",
                       &why));
    // Flow event without an id.
    EXPECT_FALSE(check(R"({"traceEvents":[
        {"ph":"s","name":"a","cat":"t","pid":1,"tid":1,"ts":0}
    ]})",
                       &why));
    // Well-formed B/E pair passes.
    EXPECT_TRUE(check(R"({"traceEvents":[
        {"ph":"B","name":"a","cat":"t","pid":1,"tid":1,"ts":0},
        {"ph":"E","name":"a","cat":"t","pid":1,"tid":1,"ts":2}
    ]})",
                      &why))
        << why;
}

TEST(Export, MetricsJsonParsesAndCarriesHashes)
{
    ScopedTracer st;
    {
        Span a("pld", "build");
        count("cache.hits", 3);
        record("hls.seconds", 0.25);
        gauge("pld.wall.hls", 0.5);
    }
    std::ostringstream os;
    st.tracer().writeMetricsJson(os);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, err)) << err;

    const json::Value *hash = doc.get("structure_hash");
    ASSERT_NE(hash, nullptr);
    EXPECT_EQ(hash->type, json::Type::Str);
    EXPECT_EQ(hash->str.rfind("0x", 0), 0u);

    const json::Value *counters = doc.get("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(counters->get("cache.hits"), nullptr);
    EXPECT_DOUBLE_EQ(counters->get("cache.hits")->num, 3.0);
}
