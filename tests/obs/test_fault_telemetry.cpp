/**
 * Fault-path telemetry: under PLD_FAULT-style injection the ladder
 * counters in BuildReport::metrics (attempts per rung, healed-at
 * rung, degradations) must agree exactly with the per-attempt
 * records the report already carries — the metrics are a projection
 * of the ladder, not a second bookkeeping system that can drift.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/fault.h"
#include "fabric/device.h"
#include "ir/builder.h"
#include "obs/trace.h"
#include "pld/compiler.h"

using namespace pld;
using namespace pld::ir;
using namespace pld::flow;

namespace {

const fabric::Device &
device()
{
    static fabric::Device d = fabric::makeU50();
    return d;
}

OperatorFn
makeScale(const std::string &name, double k, int n)
{
    constexpr Type fx = Type::fx(32, 17);
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", fx);
    b.forLoop(0, n, [&](Ex) {
        b.set(x, b.read(in).bitcast(fx));
        b.write(out, (Ex(x) * litF(k, fx)).cast(fx));
    });
    return b.finish();
}

/** Same shape as the fault tests: "shared" pinned to a page type
 * with a promotion target, so the full ladder is reachable. */
Graph
makeApp()
{
    GraphBuilder gb("app");
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto mid = gb.wire();
    OperatorFn shared = makeScale("shared", 2.0, 8);
    shared.pragma.pageNum = 1;
    gb.inst(shared, {in}, {mid});
    gb.inst(makeScale("tail", 0.5, 8), {mid}, {out});
    return gb.finish();
}

CompileOptions
faultyOpts(const std::string &spec)
{
    CompileOptions o;
    o.effort = 0.1;
    o.parallelJobs = 2;
    if (!spec.empty())
        o.faults = FaultPlan::parse(spec);
    return o;
}

/**
 * Recompute the expected ladder counters from the per-attempt
 * records: one ladder.attempts.<rung> per attempt, one
 * ladder.healed_at.<rung> per operator that ended Ok, one
 * ladder.degraded per softcore fallback.
 */
std::map<std::string, int64_t>
expectedLadderCounters(const BuildReport &report)
{
    std::map<std::string, int64_t> want;
    for (const auto &oc : report.ops) {
        if (oc.fromCache)
            continue;
        for (const auto &att : oc.attempts) {
            ++want[std::string("ladder.attempts.") +
                   ladderStepName(att.step)];
        }
        if (oc.degraded)
            ++want["ladder.degraded"];
        if (oc.finalCode == CompileCode::Ok &&
            !oc.attempts.empty()) {
            ++want[std::string("ladder.healed_at.") +
                   ladderStepName(oc.attempts.back().step)];
        }
    }
    return want;
}

void
expectLadderCountersMatch(const BuildReport &report)
{
    ASSERT_TRUE(report.metrics.enabled);
    std::map<std::string, int64_t> want =
        expectedLadderCounters(report);
    for (const auto &[name, total] : want) {
        EXPECT_EQ(report.metrics.counter(name), total)
            << "counter " << name
            << " disagrees with the attempt records";
    }
    // And no phantom ladder counters beyond the records.
    for (const auto &[name, total] : report.metrics.counters) {
        if (name.rfind("ladder.", 0) != 0 ||
            name == "ladder.timing_accepted")
            continue;
        auto it = want.find(name);
        ASSERT_NE(it, want.end()) << "unexpected counter " << name;
        EXPECT_EQ(total, it->second) << name;
    }
}

} // namespace

TEST(FaultTelemetry, CleanBuildHealsEverythingAtInitial)
{
    obs::ScopedTracer st;
    PldCompiler pc(device(), faultyOpts(""));
    AppBuild b = pc.build(makeApp(), OptLevel::O1);
    ASSERT_TRUE(b.report.allOk());

    expectLadderCountersMatch(b.report);
    EXPECT_EQ(b.report.metrics.counter("ladder.attempts.initial"), 2);
    EXPECT_EQ(b.report.metrics.counter("ladder.healed_at.initial"),
              2);
    EXPECT_EQ(b.report.metrics.counter("ladder.degraded"), 0);
}

TEST(FaultTelemetry, FullLadderCountsEveryRung)
{
    // Routing never succeeds for "shared": five rungs, softcore end.
    obs::ScopedTracer st;
    PldCompiler pc(device(), faultyOpts("route_fail:shared"));
    AppBuild b = pc.build(makeApp(), OptLevel::O1);
    ASSERT_TRUE(b.report.allOk());
    EXPECT_EQ(b.report.degradedCount(), 1);

    expectLadderCountersMatch(b.report);
    const obs::MetricsSnapshot &m = b.report.metrics;
    // "shared" + "tail" both attempt initial; only "shared" climbs.
    EXPECT_EQ(m.counter("ladder.attempts.initial"), 2);
    EXPECT_EQ(m.counter("ladder.attempts.escalate-effort"), 1);
    EXPECT_EQ(m.counter("ladder.attempts.fresh-seed"), 1);
    EXPECT_EQ(m.counter("ladder.attempts.promote-page"), 1);
    EXPECT_EQ(m.counter("ladder.attempts.softcore-fallback"), 1);
    EXPECT_EQ(m.counter("ladder.healed_at.initial"), 1);
    EXPECT_EQ(m.counter("ladder.healed_at.softcore-fallback"), 1);
    EXPECT_EQ(m.counter("ladder.degraded"), 1);
    EXPECT_EQ(m.counter("ladder.degraded"),
              int64_t(b.report.degradedCount()));
    // The degraded operator went through the softcore generator.
    EXPECT_EQ(m.counter("rvgen.compiles"), 1);
}

TEST(FaultTelemetry, PartialFaultHealsMidLadder)
{
    // One injected failure: escalate-effort heals, no degradation.
    obs::ScopedTracer st;
    PldCompiler pc(device(), faultyOpts("route_fail:shared*1"));
    AppBuild b = pc.build(makeApp(), OptLevel::O1);
    ASSERT_TRUE(b.report.allOk());

    expectLadderCountersMatch(b.report);
    const obs::MetricsSnapshot &m = b.report.metrics;
    EXPECT_EQ(m.counter("ladder.attempts.initial"), 2);
    EXPECT_EQ(m.counter("ladder.attempts.escalate-effort"), 1);
    EXPECT_EQ(m.counter("ladder.healed_at.initial"), 1);
    EXPECT_EQ(m.counter("ladder.healed_at.escalate-effort"), 1);
    EXPECT_EQ(m.counter("ladder.degraded"), 0);
    EXPECT_EQ(m.counter("cache.corrupt"), 0);
}

TEST(FaultTelemetry, CorruptCacheEntryCountsRecompile)
{
    // Build twice with cache corruption injected on the second
    // lookup: the corrupt-recompile path must count.
    obs::ScopedTracer st;
    PldCompiler pc(device(), faultyOpts("cache_corrupt:shared*1"));
    AppBuild b1 = pc.build(makeApp(), OptLevel::O1);
    ASSERT_TRUE(b1.report.allOk());
    int64_t corrupt_before =
        st.tracer().metrics().snapshot().counter("cache.corrupt");

    AppBuild b2 = pc.build(makeApp(), OptLevel::O1);
    ASSERT_TRUE(b2.report.allOk());
    int64_t corrupt_delta =
        b2.report.metrics.counter("cache.corrupt");
    EXPECT_EQ(st.tracer().metrics().snapshot().counter(
                  "cache.corrupt"),
              corrupt_before + corrupt_delta);
    EXPECT_GE(corrupt_delta, 1)
        << "injected corruption must surface in telemetry";
    // A corrupt hit is also a miss (it recompiles).
    EXPECT_GE(b2.report.metrics.counter("cache.misses"),
              corrupt_delta);
    expectLadderCountersMatch(b2.report);
}

TEST(FaultTelemetry, MetricsDisabledWithoutTracer)
{
    // Belt-and-braces: no tracer => the report snapshot is inert but
    // the attempt records are still complete.
    obs::Tracer::current();
    obs::Tracer *prev = obs::Tracer::install(nullptr);
    PldCompiler pc(device(), faultyOpts("route_fail:shared*1"));
    AppBuild b = pc.build(makeApp(), OptLevel::O1);
    obs::Tracer::install(prev);

    EXPECT_FALSE(b.report.metrics.enabled);
    EXPECT_TRUE(b.report.metrics.counters.empty());
    for (const auto &oc : b.report.ops) {
        if (oc.op == "shared") {
            EXPECT_EQ(oc.attempts.size(), 2u);
        }
    }
}
