/**
 * The telemetry determinism gate: compiling the same app with 1 vs 4
 * worker/P&R threads must produce an identical structural span tree
 * (structureHash) and identical deterministic counter totals — the
 * in-process equivalent of CI diffing `pldtrace --hash` output for
 * PLD_THREADS=1 and =4. Thread counts are driven through
 * CompileOptions (parallelJobs / pnrThreads) rather than the env var
 * because ThreadBudget::total() is a cached-once static.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "fabric/device.h"
#include "ir/builder.h"
#include "obs/trace.h"
#include "pld/compiler.h"
#include "sys/system.h"

using namespace pld;
using namespace pld::ir;
using namespace pld::flow;

namespace {

const fabric::Device &
device()
{
    static fabric::Device d = fabric::makeU50();
    return d;
}

OperatorFn
makeScale(const std::string &name, double k, int n)
{
    constexpr Type fx = Type::fx(32, 17);
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", fx);
    b.pragma(Target::HW);
    b.forLoop(0, n, [&](Ex) {
        b.set(x, b.read(in).bitcast(fx));
        b.write(out, (Ex(x) * litF(k, fx)).cast(fx));
    });
    return b.finish();
}

/** Three-operator chain so parallelJobs > 1 actually overlaps. */
Graph
makeApp()
{
    GraphBuilder gb("det-app");
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto a = gb.wire();
    auto b = gb.wire();
    gb.inst(makeScale("head", 2.0, 16), {in}, {a});
    gb.inst(makeScale("body", 0.5, 16), {a}, {b});
    gb.inst(makeScale("tail", 1.25, 16), {b}, {out});
    return gb.finish();
}

struct Fingerprint
{
    uint64_t structure = 0;
    uint64_t counters = 0;
    std::map<std::string, int64_t> totals;
    obs::MetricsSnapshot report;
};

Fingerprint
compileWithThreads(unsigned jobs, unsigned pnr_threads)
{
    obs::ScopedTracer st;
    CompileOptions o;
    o.effort = 0.25;
    o.parallelJobs = jobs;
    o.pnrThreads = pnr_threads;
    PldCompiler pc(device(), o);
    AppBuild b = pc.build(makeApp(), OptLevel::O1);
    EXPECT_TRUE(b.report.allOk());

    Fingerprint fp;
    fp.structure = st.tracer().structureHash();
    obs::MetricsSnapshot snap = st.tracer().metrics().snapshot();
    fp.counters = snap.countersHash();
    fp.totals = snap.deterministicCounters();
    fp.report = b.report.metrics;
    return fp;
}

} // namespace

TEST(Determinism, StructureAndCountersIdenticalAcrossThreadCounts)
{
    Fingerprint one = compileWithThreads(1, 1);
    Fingerprint four = compileWithThreads(4, 4);

    EXPECT_EQ(one.structure, four.structure)
        << "span-tree structure must not depend on thread count";
    EXPECT_EQ(one.counters, four.counters);
    ASSERT_EQ(one.totals.size(), four.totals.size());
    for (const auto &[name, total] : one.totals) {
        EXPECT_FALSE(obs::isSchedName(name)) << name;
        auto it = four.totals.find(name);
        ASSERT_NE(it, four.totals.end()) << name << " missing at 4";
        EXPECT_EQ(it->second, total) << "counter " << name;
    }
}

TEST(Determinism, RepeatedSequentialBuildsReproduce)
{
    Fingerprint a = compileWithThreads(1, 1);
    Fingerprint b = compileWithThreads(1, 1);
    EXPECT_EQ(a.structure, b.structure);
    EXPECT_EQ(a.counters, b.counters);
}

TEST(Determinism, ReportWindowMatchesRegistryForSoloBuild)
{
    // For a single build on a fresh tracer the per-build window delta
    // is the whole registry; deterministic counters must agree.
    Fingerprint fp = compileWithThreads(2, 2);
    ASSERT_TRUE(fp.report.enabled);
    for (const auto &[name, total] : fp.totals) {
        EXPECT_EQ(fp.report.counter(name), total)
            << "window counter " << name;
    }
    // The report carries the build's stage telemetry.
    EXPECT_GT(fp.report.counter("pld.builds"), 0);
    EXPECT_GT(fp.report.counter("hls.operators"), 0);
    EXPECT_NE(fp.report.dist("pld.stage.pnr.seconds"), nullptr);
}
