/**
 * -Os softcore tier: MIR round-trip, allocator properties, peephole
 * behavior, forced-spill correctness, and the cycle regression gate
 * that justifies the tier's existence (>= 5x fewer ISS cycles than
 * -O0 on Rosetta-style kernels).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "dataflow/stream.h"
#include "interp/exec.h"
#include "ir/builder.h"
#include "rv32/iss.h"
#include "rvgen/codegen.h"
#include "rvgen/isel.h"
#include "rvgen/mir.h"
#include "rvgen/regalloc.h"

using namespace pld;
using namespace pld::ir;
using namespace pld::rvgen;

namespace {

// --- shared run harness (mirrors test_crosscheck) ------------------

std::vector<uint32_t>
runInterp(const OperatorFn &fn, const std::vector<uint32_t> &inputs)
{
    dataflow::WordFifo fin(0), fout(0);
    dataflow::FifoReadPort ip(fin);
    dataflow::FifoWritePort op(fout);
    std::vector<dataflow::StreamPort *> ports;
    for (const auto &p : fn.ports) {
        ports.push_back(p.dir == PortDir::In
                            ? static_cast<dataflow::StreamPort *>(&ip)
                            : &op);
    }
    interp::OperatorExec exec(fn, ports);
    for (uint32_t w : inputs)
        fin.push(w);
    EXPECT_EQ(exec.run(), interp::RunStatus::Done);
    std::vector<uint32_t> out;
    while (fout.canPop())
        out.push_back(fout.pop());
    return out;
}

/** Run on the ISS at the given tier; returns (words, cycles). */
std::vector<uint32_t>
runIssTier(const OperatorFn &fn, const std::vector<uint32_t> &inputs,
           const RvOptions &opt, uint64_t *cycles = nullptr,
           RvResult *resultOut = nullptr)
{
    auto rv = rvgen::compileToRiscv(fn, opt);
    EXPECT_EQ(rv.tier, opt.tier);
    dataflow::WordFifo fin(0), fout(0);
    dataflow::FifoReadPort ip(fin);
    dataflow::FifoWritePort op(fout);
    std::vector<dataflow::StreamPort *> ports;
    for (const auto &p : fn.ports) {
        ports.push_back(p.dir == PortDir::In
                            ? static_cast<dataflow::StreamPort *>(&ip)
                            : &op);
    }
    rv32::Core core(rv.elf, ports);
    for (uint32_t w : inputs)
        fin.push(w);
    EXPECT_EQ(core.step(1000000000ull), rv32::CoreStatus::Halted)
        << fn.name << " [" << tierName(opt.tier)
        << "] trapped: " << core.trapReason();
    if (cycles)
        *cycles = core.cycles();
    if (resultOut)
        *resultOut = std::move(rv);
    std::vector<uint32_t> out;
    while (fout.canPop())
        out.push_back(fout.pop());
    return out;
}

/** interp == -O0 ISS == -Os ISS, word for word. */
void
expectAllTiersEquivalent(const OperatorFn &fn,
                         const std::vector<uint32_t> &inputs,
                         int regBudget = 12)
{
    auto gold = runInterp(fn, inputs);
    RvOptions o0;
    auto issO0 = runIssTier(fn, inputs, o0);
    RvOptions os;
    os.tier = Tier::Os;
    os.regBudget = regBudget;
    auto issOs = runIssTier(fn, inputs, os);
    ASSERT_EQ(gold.size(), issO0.size()) << fn.name;
    ASSERT_EQ(gold.size(), issOs.size())
        << fn.name << " budget=" << regBudget;
    for (size_t i = 0; i < gold.size(); ++i) {
        EXPECT_EQ(gold[i], issO0[i]) << fn.name << " word " << i;
        EXPECT_EQ(gold[i], issOs[i])
            << fn.name << " word " << i << " budget=" << regBudget;
    }
}

std::vector<uint32_t>
randomWords(int n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint32_t> w;
    for (int i = 0; i < n; ++i)
        w.push_back(static_cast<uint32_t>(rng.next()));
    return w;
}

constexpr Type kFx = Type::fx(32, 17);

std::vector<uint32_t>
randomFixed(int n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint32_t> w;
    for (int i = 0; i < n; ++i) {
        int32_t v = static_cast<int32_t>(rng.range(-2000000, 2000000));
        w.push_back(static_cast<uint32_t>(v));
    }
    return w;
}

} // namespace

// --- MIR text round-trip -------------------------------------------

TEST(MirText, RoundTripAllShapes)
{
    MFunction f;
    int v0 = f.newVreg(), v1 = f.newVreg();
    auto I = [&](MOp op, int rd, int rs1, int rs2, int32_t imm,
                 const std::string &label = "", bool vol = false) {
        MInst m{op};
        m.rd = rd;
        m.rs1 = rs1;
        m.rs2 = rs2;
        m.imm = imm;
        m.label = label;
        m.vol = vol;
        f.code.push_back(m);
    };
    I(MOp::Label, -1, -1, -1, 0, "entry_0");
    I(MOp::Li, v0, -1, -1, 12345);
    I(MOp::Li, v1, -1, -1, -7);
    I(MOp::Add, f.newVreg(), v0, v1, 0);
    I(MOp::Addi, f.newVreg(), v0, -1, -2048);
    I(MOp::Srai, f.newVreg(), v1, -1, 31);
    I(MOp::Lw, f.newVreg(), 10 /* a0 */, -1, 64);
    I(MOp::Lbu, f.newVreg(), v0, -1, 3);
    I(MOp::Sw, -1, v0, v1, -16);
    I(MOp::Sh, -1, 2 /* sp */, v1, 0);
    I(MOp::Lw, f.newVreg(), v0, -1, 0, "", /*vol=*/true);
    I(MOp::Copy, f.newVreg(), v1, -1, 0);
    I(MOp::Mulhsu, f.newVreg(), v0, v1, 0);
    I(MOp::Beq, -1, v0, 0 /* x0 */, 0, "skip_1");
    I(MOp::Call, -1, -1, -1, 0, "__pld_mulshift");
    I(MOp::Label, -1, -1, -1, 0, "skip_1");
    I(MOp::J, -1, -1, -1, 0, "entry_0");
    I(MOp::Ebreak, -1, -1, -1, 0);

    std::string text = printMir(f);
    MFunction g;
    std::string err;
    ASSERT_TRUE(parseMir(text, &g, &err)) << err;
    EXPECT_EQ(printMir(g), text);
    // Allocator state restored: fresh names don't collide.
    EXPECT_GE(g.nextVreg, f.nextVreg);
    EXPECT_GE(g.labelCounter, 2);
}

TEST(MirText, ParseRejectsGarbage)
{
    MFunction g;
    std::string err;
    EXPECT_FALSE(parseMir("  frobnicate a0, a1\n", &g, &err));
    EXPECT_NE(err.find("line 1"), std::string::npos);
    EXPECT_FALSE(parseMir("  add a0, a1\n", &g, &err)); // missing op
    EXPECT_FALSE(parseMir("  li %5, 3\n", &g, &err)); // %5 < vreg base
}

TEST(MirText, CommentsAndBlanksIgnored)
{
    MFunction g;
    std::string err;
    ASSERT_TRUE(parseMir("# header\n\n  li %32, 4  # trailing\n", &g,
                         &err))
        << err;
    ASSERT_EQ(g.code.size(), 1u);
    EXPECT_EQ(g.code[0].op, MOp::Li);
    EXPECT_EQ(g.code[0].imm, 4);
}

// --- linear-scan allocator properties ------------------------------

namespace {

/** Brute force: max number of intervals simultaneously live. */
int
maxDepth(const std::vector<LiveInterval> &iv)
{
    int deepest = 0;
    for (const auto &a : iv) {
        int d = 0;
        for (const auto &b : iv)
            if (b.start <= a.start && a.start <= b.end)
                ++d;
        deepest = std::max(deepest, d);
    }
    return deepest;
}

std::vector<LiveInterval>
randomIntervals(int n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<LiveInterval> iv;
    for (int i = 0; i < n; ++i) {
        int s = static_cast<int>(rng.below(120));
        int e = s + static_cast<int>(rng.below(40));
        iv.push_back({kVregBase + i, s, e});
    }
    std::sort(iv.begin(), iv.end(),
              [](const LiveInterval &a, const LiveInterval &b) {
                  if (a.start != b.start)
                      return a.start < b.start;
                  return a.vreg < b.vreg;
              });
    return iv;
}

} // namespace

TEST(LinearScan, RandomIntervalsNeverConflict)
{
    for (uint64_t seed = 0; seed < 40; ++seed) {
        for (int regs : {1, 2, 3, 6, 12}) {
            auto iv = randomIntervals(30, seed * 7 + 1);
            auto assign = allocateIntervals(iv, regs);
            ASSERT_EQ(assign.size(), iv.size());
            for (size_t i = 0; i < iv.size(); ++i) {
                if (assign[i] < 0)
                    continue;
                EXPECT_LT(assign[i], regs);
                for (size_t j = i + 1; j < iv.size(); ++j) {
                    if (assign[j] != assign[i])
                        continue;
                    // Same register: intervals must be disjoint
                    // (inclusive endpoints).
                    bool overlap = iv[i].start <= iv[j].end &&
                                   iv[j].start <= iv[i].end;
                    EXPECT_FALSE(overlap)
                        << "seed " << seed << " regs " << regs
                        << ": vregs " << iv[i].vreg << " and "
                        << iv[j].vreg << " share r" << assign[i];
                }
            }
        }
    }
}

TEST(LinearScan, NoSpillWhenPressureFits)
{
    // Greedy coloring in start order is optimal for interval graphs:
    // when max overlap depth <= numRegs, nothing may spill.
    for (uint64_t seed = 100; seed < 130; ++seed) {
        auto iv = randomIntervals(24, seed);
        int depth = maxDepth(iv);
        auto assign = allocateIntervals(iv, depth);
        for (size_t i = 0; i < iv.size(); ++i)
            EXPECT_GE(assign[i], 0)
                << "seed " << seed << " depth " << depth
                << ": interval " << i << " spilled needlessly";
    }
}

TEST(LinearScan, ZeroRegistersSpillsEverything)
{
    auto iv = randomIntervals(10, 42);
    auto assign = allocateIntervals(iv, 0);
    for (int a : assign)
        EXPECT_EQ(a, -1);
}

TEST(LinearScan, LoopBodyIntervalSpansBackedge)
{
    // An induction variable defined before the loop and stepped
    // inside it must stay live across the whole loop body, including
    // instructions that don't mention it.
    const char *text = "  li %32, 0\n"
                       "loop_0:\n"
                       "  li %33, 1\n"
                       "  li %34, 2\n"
                       "  add %35, %33, %34\n"
                       "  addi %32, %32, 1\n"
                       "  li %36, 10\n"
                       "  blt %32, %36, loop_0\n"
                       "  ebreak\n";
    MFunction f;
    std::string err;
    ASSERT_TRUE(parseMir(text, &f, &err)) << err;
    auto iv = computeLiveIntervals(f);
    const LiveInterval *ind = nullptr;
    for (const auto &i : iv)
        if (i.vreg == 32)
            ind = &i;
    ASSERT_NE(ind, nullptr);
    EXPECT_EQ(ind->start, 0);
    // Live through the branch at index 7.
    EXPECT_GE(ind->end, 7);
}

// --- peephole ------------------------------------------------------

namespace {

int
countOp(const MFunction &f, MOp op)
{
    int n = 0;
    for (const auto &m : f.code)
        if (m.op == op)
            ++n;
    return n;
}

MFunction
parsed(const char *text)
{
    MFunction f;
    std::string err;
    EXPECT_TRUE(parseMir(text, &f, &err)) << err;
    return f;
}

} // namespace

TEST(Peephole, CseRemovesDuplicatePureOps)
{
    // Two identical adds: the second becomes a copy and then both
    // the copy and any dead remnants are swept.
    MFunction f = parsed("  li %32, 5\n"
                         "  li %33, 6\n"
                         "  add %34, %32, %33\n"
                         "  add %35, %32, %33\n"
                         "  sw %34, 0(%36)\n"
                         "  sw %35, 4(%36)\n");
    // Keep %36 defined so regalloc-style passes stay happy.
    peephole(f);
    EXPECT_EQ(countOp(f, MOp::Add), 1);
}

TEST(Peephole, RedundantSextElimination)
{
    // srai-31 of a value that is already a sign bit (slt result) is
    // the value's sign extension of a 0/1 quantity: always 0.
    MFunction f = parsed("  slt %33, %32, zero\n"
                         "  srai %34, %33, 31\n"
                         "  sw %33, 0(%35)\n"
                         "  sw %34, 4(%35)\n");
    peephole(f);
    // The srai must be gone (rewritten to a copy of x0 and folded
    // into the store or left as a copy -- either way no Srai).
    EXPECT_EQ(countOp(f, MOp::Srai), 0);
}

TEST(Peephole, DeadCodeSwept)
{
    MFunction f = parsed("  li %32, 1\n"
                         "  li %33, 2\n"
                         "  add %34, %32, %33\n" // dead
                         "  sw %32, 0(sp)\n");
    int removed = peephole(f);
    EXPECT_GE(removed, 2); // the add and at least li %33
    EXPECT_EQ(countOp(f, MOp::Add), 0);
}

TEST(Peephole, VolatileNeverTouched)
{
    // Two identical MMIO loads must both survive (stream pops), and
    // a dead volatile load must not be swept.
    MFunction f = parsed("  li %32, 268435456\n"
                         "  lw.v %33, 0(%32)\n"
                         "  lw.v %34, 0(%32)\n"
                         "  sw %33, 0(sp)\n");
    peephole(f);
    EXPECT_EQ(countOp(f, MOp::Lw), 2);
}

TEST(Peephole, CopyPropagationThroughChain)
{
    MFunction f = parsed("  li %32, 9\n"
                         "  mv %33, %32\n"
                         "  mv %34, %33\n"
                         "  sw %34, 0(sp)\n");
    peephole(f);
    // The store now reads the original register; the copies die.
    EXPECT_EQ(countOp(f, MOp::Copy), 0);
    for (const auto &m : f.code)
        if (m.op == MOp::Sw)
            EXPECT_EQ(m.rs2, 32);
}

TEST(Peephole, StateResetsAtLabels)
{
    // The same expression on both sides of a label must NOT be CSE'd
    // (the label is a join point; the first value may be stale).
    MFunction f = parsed("  add %34, %32, %33\n"
                         "  sw %34, 0(sp)\n"
                         "join_0:\n"
                         "  add %35, %32, %33\n"
                         "  sw %35, 4(sp)\n"
                         "  bne %35, zero, join_0\n");
    peephole(f);
    EXPECT_EQ(countOp(f, MOp::Add), 2);
}

// --- -Os correctness: full tier crosscheck -------------------------

namespace {

/** The crosscheck battery from test_crosscheck, run on all tiers. */
OperatorFn
mixKernel()
{
    OpBuilder b("mix_os");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", kFx);
    auto y = b.var("y", kFx);
    auto acc = b.var("acc", kFx);
    b.forLoop(0, 8, [&](Ex) {
        b.set(x, b.read(in).bitcast(kFx));
        b.set(y, b.read(in).bitcast(kFx));
        Ex prod = (Ex(x) * Ex(y)).cast(kFx);
        Ex sum = (Ex(x) + Ex(y)).cast(kFx);
        Ex pick = b.select(prod > sum, prod, sum);
        b.set(acc, (Ex(acc) + pick).cast(kFx));
        b.write(out, acc);
    });
    return b.finish();
}

} // namespace

TEST(OsTier, AddSubChain)
{
    OpBuilder b("addsub_os");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", kFx);
    b.forLoop(0, 16, [&](Ex) {
        b.set(x, b.read(in).bitcast(kFx));
        b.write(out,
                (Ex(x) + litF(1.25, kFx) - litF(0.5, kFx)).cast(kFx));
    });
    expectAllTiersEquivalent(b.finish(), randomFixed(16, 1));
}

TEST(OsTier, MultiplyWideIntermediates)
{
    OpBuilder b("mulwide_os");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", kFx);
    auto y = b.var("y", kFx);
    b.forLoop(0, 8, [&](Ex) {
        b.set(x, b.read(in).bitcast(kFx));
        b.set(y, b.read(in).bitcast(kFx));
        b.write(out, (Ex(x) * Ex(y) - Ex(y) * Ex(y)).cast(kFx));
    });
    expectAllTiersEquivalent(b.finish(), randomFixed(16, 2));
}

TEST(OsTier, DivisionSignsAndZero)
{
    OpBuilder b("divsigns_os");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", kFx);
    auto y = b.var("y", kFx);
    b.forLoop(0, 8, [&](Ex) {
        b.set(x, b.read(in).bitcast(kFx));
        b.set(y, b.read(in).bitcast(kFx));
        b.write(out, Ex(x) / Ex(y));
    });
    std::vector<uint32_t> inputs = randomFixed(14, 3);
    inputs.push_back(static_cast<uint32_t>(32768));
    inputs.push_back(0);
    expectAllTiersEquivalent(b.finish(), inputs);
}

TEST(OsTier, ComparisonsAllSix)
{
    OpBuilder b("cmp6_os");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::s(32));
    auto y = b.var("y", Type::s(32));
    b.forLoop(0, 12, [&](Ex) {
        b.set(x, b.read(in).bitcast(Type::s(32)));
        b.set(y, b.read(in).bitcast(Type::s(32)));
        Ex bits = (Ex(x) < Ex(y)).cast(Type::u(32)) |
                  ((Ex(x) <= Ex(y)).cast(Type::u(32)) << 1) |
                  ((Ex(x) > Ex(y)).cast(Type::u(32)) << 2) |
                  ((Ex(x) >= Ex(y)).cast(Type::u(32)) << 3) |
                  ((Ex(x) == Ex(y)).cast(Type::u(32)) << 4) |
                  ((Ex(x) != Ex(y)).cast(Type::u(32)) << 5);
        b.write(out, bits);
    });
    auto inputs = randomWords(22, 4);
    inputs.push_back(77);
    inputs.push_back(77);
    expectAllTiersEquivalent(b.finish(), inputs);
}

TEST(OsTier, NarrowTypesWrapIdentically)
{
    OpBuilder b("narrow_os");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::s(8));
    auto u = b.var("u", Type::u(5));
    b.forLoop(0, 16, [&](Ex) {
        b.set(x, b.read(in).bitcast(Type::s(8)));
        b.set(u, (Ex(x) * 3).cast(Type::u(5)));
        b.write(out, (Ex(u) + Ex(x)).cast(Type::s(16)));
    });
    expectAllTiersEquivalent(b.finish(), randomWords(16, 6));
}

TEST(OsTier, ArrayReadModifyWrite)
{
    OpBuilder b("hist_os");
    auto in = b.input("in");
    auto out = b.output("out");
    auto h = b.array("h", Type::s(16), 8);
    auto x = b.var("x", Type::u(32));
    b.forLoop(0, 32, [&](Ex) {
        b.set(x, b.read(in));
        Ex bin = (Ex(x) & lit(7, Type::u(32))).cast(Type::s(32));
        b.store(h, bin, h[bin] + 1);
    });
    b.forLoop(0, 8, [&](Ex i) { b.write(out, h[i]); });
    expectAllTiersEquivalent(b.finish(), randomWords(32, 8));
}

TEST(OsTier, ModuloOperator)
{
    OpBuilder b("modop_os");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::s(32));
    b.forLoop(0, 16, [&](Ex) {
        b.set(x, b.read(in).bitcast(Type::s(32)));
        b.write(out, (Ex(x) % lit(7)).cast(Type::s(32)));
    });
    expectAllTiersEquivalent(b.finish(), randomWords(16, 9));
}

TEST(OsTier, SelectAndLogicOps)
{
    OpBuilder b("sel_os");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::s(32));
    b.forLoop(0, 16, [&](Ex) {
        b.set(x, b.read(in).bitcast(Type::s(32)));
        Ex inside = (Ex(x) > -1000) && (Ex(x) < 1000);
        b.write(out, b.select(inside || (Ex(x) == 0),
                              Ex(x) * 2, -Ex(x)).cast(Type::s(32)));
    });
    auto inputs = randomWords(14, 7);
    inputs.push_back(500);
    inputs.push_back(static_cast<uint32_t>(-70000));
    expectAllTiersEquivalent(b.finish(), inputs);
}

TEST(OsTier, RandomizedSweep)
{
    OperatorFn fn = mixKernel();
    for (uint64_t seed = 300; seed < 308; ++seed)
        expectAllTiersEquivalent(fn, randomFixed(16, seed));
}

TEST(OsTier, ConstantSubtreesFold)
{
    OpBuilder b("cfold_os");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", kFx);
    b.forLoop(0, 4, [&](Ex) {
        b.set(x, b.read(in).bitcast(kFx));
        // (1.25 * 4 - 1) is a constant subtree; * 8 strength-reduces.
        b.write(out, (Ex(x) * litF(8.0, kFx) +
                      (litF(1.25, kFx) * litF(4.0, kFx) -
                       litF(1.0, kFx)).cast(kFx))
                         .cast(kFx));
    });
    OperatorFn fn = b.finish();
    auto inputs = randomFixed(4, 11);
    expectAllTiersEquivalent(fn, inputs);

    RvOptions os;
    os.tier = Tier::Os;
    RvResult r;
    runIssTier(fn, inputs, os, nullptr, &r);
    EXPECT_GT(r.constantsFolded, 0);
    EXPECT_GT(r.mirInstructions, 0);
}

// --- forced spills -------------------------------------------------

TEST(OsTier, ForcedSpillsStayBitIdentical)
{
    OperatorFn fn = mixKernel();
    auto inputs = randomFixed(16, 21);
    for (int budget : {0, 1, 2, 4}) {
        expectAllTiersEquivalent(fn, inputs, budget);
        RvOptions os;
        os.tier = Tier::Os;
        os.regBudget = budget;
        RvResult r;
        runIssTier(fn, inputs, os, nullptr, &r);
        if (budget == 0)
            EXPECT_GT(r.spills, 0) << "budget 0 must spill";
    }
}

TEST(OsTier, SpillCountDropsWithBudget)
{
    OperatorFn fn = mixKernel();
    auto inputs = randomFixed(16, 22);
    RvOptions tight;
    tight.tier = Tier::Os;
    tight.regBudget = 0;
    RvResult rTight;
    runIssTier(fn, inputs, tight, nullptr, &rTight);
    RvOptions loose;
    loose.tier = Tier::Os;
    loose.regBudget = 12;
    RvResult rLoose;
    runIssTier(fn, inputs, loose, nullptr, &rLoose);
    EXPECT_GT(rTight.spills, rLoose.spills);
}

// --- cycle regression gate -----------------------------------------

namespace {

/** SWAR popcount over u32, all shifts/masks/adds (div-free). */
Ex
popcount(OpBuilder &b, Ex v)
{
    Type u32 = Type::u(32);
    Ex a = (v - ((v >> 1) & lit(0x55555555, u32))).cast(u32);
    Ex c = ((a & lit(0x33333333, u32)) +
            ((a >> 2) & lit(0x33333333, u32)))
               .cast(u32);
    Ex d = ((c + (c >> 4)).cast(u32) & lit(0x0F0F0F0F, u32));
    Ex s = (d + (d >> 8)).cast(u32);
    return ((s + (s >> 16)).cast(u32) & lit(0x3F, u32));
}

/** digitrec-style: 1-NN hamming scan against an on-chip shard. */
OperatorFn
makeKnnKernel()
{
    OpBuilder b("knn_gate");
    auto in = b.input("in");
    auto out = b.output("out");
    std::vector<int64_t> shard;
    Rng rng(0xD161);
    for (int i = 0; i < 16; ++i)
        shard.push_back(static_cast<int64_t>(rng.next() & 0xFFFFFFFF));
    auto rom = b.romRaw("shard", Type::u(32), shard);
    auto d = b.var("d", Type::u(32));
    auto dist = b.var("dist", Type::s(32));
    auto best = b.var("best", Type::s(32));
    b.forLoop(0, 8, [&](Ex) {
        b.set(d, b.read(in));
        b.set(best, lit(999));
        b.forLoop(0, 16, [&](Ex i) {
            b.set(dist,
                  popcount(b, (Ex(d) ^ rom[i]).cast(Type::u(32)))
                      .cast(Type::s(32)));
            b.set(best, b.select(Ex(dist) < Ex(best), Ex(dist),
                                 Ex(best)).cast(Type::s(32)));
        });
        b.write(out, best);
    });
    return b.finish();
}

/** spam-filter-style: fixed-point dot product with on-chip weights. */
OperatorFn
makeDotKernel()
{
    OpBuilder b("dot_gate");
    auto in = b.input("in");
    auto out = b.output("out");
    std::vector<int64_t> winit;
    Rng rng(0x57A4);
    for (int i = 0; i < 16; ++i)
        winit.push_back(static_cast<int64_t>(
            static_cast<int32_t>(rng.range(-60000, 60000))));
    auto w = b.romRaw("w", kFx, winit);
    auto x = b.var("x", kFx);
    auto acc = b.var("acc", kFx);
    b.forLoop(0, 4, [&](Ex) {
        b.set(acc, litF(0.0, kFx));
        b.forLoop(0, 16, [&](Ex i) {
            b.set(x, b.read(in).bitcast(kFx));
            b.set(acc, (Ex(acc) + Ex(x) * w[i]).cast(kFx));
        });
        b.write(out, acc);
    });
    return b.finish();
}

/** bnn-style: xnor + popcount + sign threshold per output bit. */
OperatorFn
makeBnnKernel()
{
    OpBuilder b("bnn_gate");
    auto in = b.input("in");
    auto out = b.output("out");
    std::vector<int64_t> winit;
    Rng rng(0xB44);
    for (int i = 0; i < 8; ++i)
        winit.push_back(static_cast<int64_t>(rng.next() & 0xFFFFFFFF));
    auto w = b.romRaw("w", Type::u(32), winit);
    auto x = b.var("x", Type::u(32));
    auto bits = b.var("bits", Type::u(32));
    b.forLoop(0, 8, [&](Ex) {
        b.set(x, b.read(in));
        b.set(bits, lit(0, Type::u(32)));
        b.forLoop(0, 8, [&](Ex i) {
            Ex pc = popcount(
                b, (~(Ex(x) ^ w[i])).cast(Type::u(32)));
            Ex bit = (pc > lit(16, Type::u(32))).cast(Type::u(32));
            b.set(bits, ((Ex(bits) << 1) | bit).cast(Type::u(32)));
        });
        b.write(out, bits);
    });
    return b.finish();
}

/** Bit-identical run at both tiers; returns (cyclesO0, cyclesOs). */
std::pair<uint64_t, uint64_t>
measureTiers(const OperatorFn &fn,
             const std::vector<uint32_t> &inputs)
{
    auto gold = runInterp(fn, inputs);
    uint64_t c0 = 0, cs = 0;
    RvOptions o0;
    auto w0 = runIssTier(fn, inputs, o0, &c0);
    RvOptions os;
    os.tier = Tier::Os;
    auto ws = runIssTier(fn, inputs, os, &cs);
    EXPECT_EQ(gold, w0) << fn.name;
    EXPECT_EQ(gold, ws) << fn.name;
    EXPECT_GT(cs, 0u);
    ::testing::Test::RecordProperty(fn.name + "_cyclesO0",
                                    static_cast<int>(c0));
    ::testing::Test::RecordProperty(fn.name + "_cyclesOs",
                                    static_cast<int>(cs));
    return {c0, cs};
}

} // namespace

TEST(CycleGate, KnnKernelAtLeast5x)
{
    auto [c0, cs] = measureTiers(makeKnnKernel(), randomWords(8, 31));
    EXPECT_GE(c0, 5 * cs) << "-O0 " << c0 << " vs -Os " << cs;
}

TEST(CycleGate, BnnKernelAtLeast5x)
{
    auto [c0, cs] = measureTiers(makeBnnKernel(), randomWords(8, 33));
    EXPECT_GE(c0, 5 * cs) << "-O0 " << c0 << " vs -Os " << cs;
}

TEST(CycleGate, DotKernelAtLeast3x)
{
    // Mul-accumulate kernels are bound by the shared interpreter-
    // exact 128-bit add window, which costs the same at both tiers,
    // so their ceiling is lower than the shift/popcount kernels'.
    auto [c0, cs] = measureTiers(makeDotKernel(), randomFixed(64, 32));
    EXPECT_GE(c0, 3 * cs) << "-O0 " << c0 << " vs -Os " << cs;
}

TEST(CycleGate, RosettaSuiteAggregateAtLeast5x)
{
    // The headline gate: across the Rosetta-style kernel suite, the
    // -Os tier must run degraded pages >= 5x faster than -O0.
    uint64_t totalO0 = 0, totalOs = 0;
    auto add = [&](std::pair<uint64_t, uint64_t> p) {
        totalO0 += p.first;
        totalOs += p.second;
    };
    add(measureTiers(makeKnnKernel(), randomWords(8, 41)));
    add(measureTiers(makeDotKernel(), randomFixed(64, 42)));
    add(measureTiers(makeBnnKernel(), randomWords(8, 43)));
    ASSERT_GT(totalOs, 0u);
    EXPECT_GE(totalO0, 5 * totalOs)
        << "aggregate -O0 " << totalO0 << " vs -Os " << totalOs
        << " (ratio "
        << static_cast<double>(totalO0) /
               static_cast<double>(totalOs)
        << ")";
}

// --- capacity errors are recoverable -------------------------------

TEST(OsTier, CapacityFailureThrowsInsteadOfAborting)
{
    // A data image beyond the 192 KB page memory must surface as a
    // std::runtime_error (the ladder catches it and falls back),
    // never as a process abort.
    OpBuilder b("huge_os");
    auto in = b.input("in");
    auto out = b.output("out");
    auto big = b.array("big", Type::s(32), 64 * 1024); // 256 KB
    auto x = b.var("x", Type::s(32));
    b.forLoop(0, 2, [&](Ex i) {
        b.set(x, b.read(in).bitcast(Type::s(32)));
        b.store(big, i, x);
        b.write(out, big[i]);
    });
    RvOptions os;
    os.tier = Tier::Os;
    EXPECT_THROW(rvgen::compileToRiscv(b.finish(), os),
                 std::runtime_error);
}
