/**
 * Cross-target equivalence: the same operator IR executed on the
 * interpreter (HW functional model) and on the RV32 softcore must be
 * bit-identical — the paper's single-source guarantee (Sec 3).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataflow/stream.h"
#include "interp/exec.h"
#include "ir/builder.h"
#include "rv32/iss.h"
#include "rvgen/codegen.h"

using namespace pld;
using namespace pld::ir;

namespace {

std::vector<uint32_t>
runInterp(const OperatorFn &fn, const std::vector<uint32_t> &inputs)
{
    dataflow::WordFifo fin(0), fout(0);
    dataflow::FifoReadPort ip(fin);
    dataflow::FifoWritePort op(fout);
    std::vector<dataflow::StreamPort *> ports;
    for (const auto &p : fn.ports) {
        ports.push_back(p.dir == PortDir::In
                            ? static_cast<dataflow::StreamPort *>(&ip)
                            : &op);
    }
    interp::OperatorExec exec(fn, ports);
    for (uint32_t w : inputs)
        fin.push(w);
    EXPECT_EQ(exec.run(), interp::RunStatus::Done);
    std::vector<uint32_t> out;
    while (fout.canPop())
        out.push_back(fout.pop());
    return out;
}

std::vector<uint32_t>
runIss(const OperatorFn &fn, const std::vector<uint32_t> &inputs)
{
    auto rv = rvgen::compileToRiscv(fn);
    dataflow::WordFifo fin(0), fout(0);
    dataflow::FifoReadPort ip(fin);
    dataflow::FifoWritePort op(fout);
    std::vector<dataflow::StreamPort *> ports;
    for (const auto &p : fn.ports) {
        ports.push_back(p.dir == PortDir::In
                            ? static_cast<dataflow::StreamPort *>(&ip)
                            : &op);
    }
    rv32::Core core(rv.elf, ports);
    for (uint32_t w : inputs)
        fin.push(w);
    EXPECT_EQ(core.step(1000000000ull), rv32::CoreStatus::Halted)
        << fn.name << " trapped: " << core.trapReason();
    std::vector<uint32_t> out;
    while (fout.canPop())
        out.push_back(fout.pop());
    return out;
}

void
expectEquivalent(const OperatorFn &fn,
                 const std::vector<uint32_t> &inputs)
{
    auto gold = runInterp(fn, inputs);
    auto iss = runIss(fn, inputs);
    ASSERT_EQ(gold.size(), iss.size()) << fn.name;
    for (size_t i = 0; i < gold.size(); ++i)
        EXPECT_EQ(gold[i], iss[i]) << fn.name << " word " << i;
}

std::vector<uint32_t>
randomWords(int n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint32_t> w;
    for (int i = 0; i < n; ++i)
        w.push_back(static_cast<uint32_t>(rng.next()));
    return w;
}

constexpr Type kFx = Type::fx(32, 17);

/** Clamp random raw words into a tame fixed-point magnitude. */
std::vector<uint32_t>
randomFixed(int n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint32_t> w;
    for (int i = 0; i < n; ++i) {
        int32_t v = static_cast<int32_t>(rng.range(-2000000, 2000000));
        w.push_back(static_cast<uint32_t>(v));
    }
    return w;
}

} // namespace

TEST(CrossCheck, AddSubChain)
{
    OpBuilder b("addsub");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", kFx);
    b.forLoop(0, 16, [&](Ex) {
        b.set(x, b.read(in).bitcast(kFx));
        b.write(out,
                (Ex(x) + litF(1.25, kFx) - litF(0.5, kFx)).cast(kFx));
    });
    expectEquivalent(b.finish(), randomFixed(16, 1));
}

TEST(CrossCheck, MultiplyWideIntermediates)
{
    OpBuilder b("mulwide");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", kFx);
    auto y = b.var("y", kFx);
    b.forLoop(0, 8, [&](Ex) {
        b.set(x, b.read(in).bitcast(kFx));
        b.set(y, b.read(in).bitcast(kFx));
        // fx*fx -> fx<64,34> intermediate; sums of those; cast back.
        b.write(out, (Ex(x) * Ex(y) - Ex(y) * Ex(y)).cast(kFx));
    });
    expectEquivalent(b.finish(), randomFixed(16, 2));
}

TEST(CrossCheck, DivisionSignsAndZero)
{
    OpBuilder b("divsigns");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", kFx);
    auto y = b.var("y", kFx);
    b.forLoop(0, 8, [&](Ex) {
        b.set(x, b.read(in).bitcast(kFx));
        b.set(y, b.read(in).bitcast(kFx));
        b.write(out, Ex(x) / Ex(y));
    });
    std::vector<uint32_t> inputs = randomFixed(14, 3);
    inputs.push_back(static_cast<uint32_t>(32768)); // x = 1.0
    inputs.push_back(0);                            // y = 0 -> 0
    expectEquivalent(b.finish(), inputs);
}

TEST(CrossCheck, ComparisonsAllSix)
{
    OpBuilder b("cmp6");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::s(32));
    auto y = b.var("y", Type::s(32));
    b.forLoop(0, 12, [&](Ex) {
        b.set(x, b.read(in).bitcast(Type::s(32)));
        b.set(y, b.read(in).bitcast(Type::s(32)));
        Ex bits = (Ex(x) < Ex(y)).cast(Type::u(32)) |
                  ((Ex(x) <= Ex(y)).cast(Type::u(32)) << 1) |
                  ((Ex(x) > Ex(y)).cast(Type::u(32)) << 2) |
                  ((Ex(x) >= Ex(y)).cast(Type::u(32)) << 3) |
                  ((Ex(x) == Ex(y)).cast(Type::u(32)) << 4) |
                  ((Ex(x) != Ex(y)).cast(Type::u(32)) << 5);
        b.write(out, bits);
    });
    auto inputs = randomWords(22, 4);
    inputs.push_back(77); // equal pair exercises eq/le/ge
    inputs.push_back(77);
    expectEquivalent(b.finish(), inputs);
}

TEST(CrossCheck, BitwiseAndShifts)
{
    OpBuilder b("bits");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::u(32));
    b.forLoop(0, 16, [&](Ex) {
        b.set(x, b.read(in));
        Ex r = ((Ex(x) & lit(0x00FF00FF, Type::u(32))) |
                (Ex(x) ^ lit(0x12345678, Type::u(32)))) ^
               (Ex(x) << 3) ^ (Ex(x) >> 5);
        b.write(out, r);
    });
    expectEquivalent(b.finish(), randomWords(16, 5));
}

TEST(CrossCheck, NarrowTypesWrapIdentically)
{
    OpBuilder b("narrow");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::s(8));
    auto u = b.var("u", Type::u(5));
    b.forLoop(0, 16, [&](Ex) {
        b.set(x, b.read(in).bitcast(Type::s(8)));
        b.set(u, (Ex(x) * 3).cast(Type::u(5)));
        b.write(out, (Ex(u) + Ex(x)).cast(Type::s(16)));
    });
    expectEquivalent(b.finish(), randomWords(16, 6));
}

TEST(CrossCheck, SelectAndLogic)
{
    OpBuilder b("sel");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::s(32));
    b.forLoop(0, 16, [&](Ex) {
        b.set(x, b.read(in).bitcast(Type::s(32)));
        Ex inside = (Ex(x) > -1000) && (Ex(x) < 1000);
        b.write(out, b.select(inside || (Ex(x) == 0),
                              Ex(x) * 2, -Ex(x)).cast(Type::s(32)));
    });
    auto inputs = randomWords(14, 7);
    inputs.push_back(500);
    inputs.push_back(static_cast<uint32_t>(-70000));
    expectEquivalent(b.finish(), inputs);
}

TEST(CrossCheck, ArrayReadModifyWrite)
{
    OpBuilder b("hist");
    auto in = b.input("in");
    auto out = b.output("out");
    auto h = b.array("h", Type::s(16), 8);
    auto x = b.var("x", Type::u(32));
    b.forLoop(0, 32, [&](Ex) {
        b.set(x, b.read(in));
        Ex bin = (Ex(x) & lit(7, Type::u(32))).cast(Type::s(32));
        b.store(h, bin, h[bin] + 1);
    });
    b.forLoop(0, 8, [&](Ex i) { b.write(out, h[i]); });
    expectEquivalent(b.finish(), randomWords(32, 8));
}

TEST(CrossCheck, ModuloOperator)
{
    OpBuilder b("modop");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::s(32));
    b.forLoop(0, 16, [&](Ex) {
        b.set(x, b.read(in).bitcast(Type::s(32)));
        b.write(out, (Ex(x) % lit(7)).cast(Type::s(32)));
    });
    expectEquivalent(b.finish(), randomWords(16, 9));
}

TEST(CrossCheck, PaperFlowCalc)
{
    // Fig 2(d)'s flow_calc arithmetic, the paper's own example.
    OpBuilder b("flow_calc");
    auto in = b.input("Input_1");
    auto out = b.output("Output_1");
    auto t = b.array("t", kFx, 6);
    auto buf0 = b.var("buf0", kFx);
    auto buf1 = b.var("buf1", kFx);
    auto denom = b.var("denom", kFx);
    b.forLoop(0, 4, [&](Ex) {
        b.forLoop(0, 6, [&](Ex i) {
            b.store(t, i, b.readAs(in, kFx));
        });
        b.set(denom, (t[1] * t[2] - t[4] * t[4]).cast(kFx));
        b.ifElse(
            Ex(denom) == litF(0.0, kFx),
            [&] {
                b.set(buf0, litF(0.0, kFx));
                b.set(buf1, litF(0.0, kFx));
            },
            [&] {
                b.set(buf0,
                      (t[0] * t[4] - t[5] * t[2]).cast(kFx) /
                          Ex(denom));
                b.set(buf1,
                      (t[5] * t[4] - t[0] * t[1]).cast(kFx) /
                          Ex(denom));
            });
        b.write(out, buf0);
        b.write(out, buf1);
    });
    expectEquivalent(b.finish(), randomFixed(24, 10));
}

TEST(CrossCheck, RandomizedExpressionSweep)
{
    // Property-style sweep: many random input batches through a
    // kernel mixing every operator class.
    OpBuilder b("mix");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", kFx);
    auto y = b.var("y", kFx);
    auto acc = b.var("acc", kFx);
    b.forLoop(0, 8, [&](Ex) {
        b.set(x, b.read(in).bitcast(kFx));
        b.set(y, b.read(in).bitcast(kFx));
        Ex prod = (Ex(x) * Ex(y)).cast(kFx);
        Ex sum = (Ex(x) + Ex(y)).cast(kFx);
        Ex pick = b.select(prod > sum, prod, sum);
        b.set(acc, (Ex(acc) + pick).cast(kFx));
        b.write(out, acc);
    });
    OperatorFn fn = b.finish();
    for (uint64_t seed = 100; seed < 110; ++seed)
        expectEquivalent(fn, randomFixed(16, seed));
}
