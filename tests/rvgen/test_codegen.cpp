#include <gtest/gtest.h>

#include "dataflow/stream.h"
#include "ir/builder.h"
#include "rv32/iss.h"
#include "rvgen/codegen.h"

using namespace pld;
using namespace pld::ir;
using rv32::Core;
using rv32::CoreStatus;
using rvgen::compileToRiscv;

namespace {

/** Run a 1-in/1-out operator image over the inputs on the ISS. */
std::vector<uint32_t>
runIss(const OperatorFn &fn, const std::vector<uint32_t> &inputs,
       uint64_t *cycles = nullptr, std::string *console = nullptr)
{
    auto rv = compileToRiscv(fn);
    dataflow::WordFifo fin(0), fout(0);
    dataflow::FifoReadPort ip(fin);
    dataflow::FifoWritePort op(fout);
    std::vector<dataflow::StreamPort *> ports;
    for (const auto &p : fn.ports) {
        ports.push_back(p.dir == PortDir::In
                            ? static_cast<dataflow::StreamPort *>(&ip)
                            : &op);
    }
    Core core(rv.elf, ports);
    for (uint32_t w : inputs)
        fin.push(w);
    CoreStatus st = core.step(100000000ull);
    EXPECT_EQ(st, CoreStatus::Halted)
        << "trap: " << core.trapReason() << " pc=" << core.pc();
    if (cycles)
        *cycles = core.cycles();
    if (console)
        *console = core.consoleOut();
    std::vector<uint32_t> out;
    while (fout.canPop())
        out.push_back(fout.pop());
    return out;
}

} // namespace

TEST(RvCodegen, DoublerRuns)
{
    OpBuilder b("doubler");
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, 4, [&](Ex) {
        b.write(out, b.read(in).bitcast(Type::s(32)) * 2);
    });
    auto outs = runIss(b.finish(), {1, 2, 3, 4});
    EXPECT_EQ(outs, (std::vector<uint32_t>{2, 4, 6, 8}));
}

TEST(RvCodegen, FixedPointMultiply)
{
    constexpr Type fx = Type::fx(32, 17);
    OpBuilder b("fxmul");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", fx);
    b.forLoop(0, 2, [&](Ex) {
        b.set(x, b.read(in).bitcast(fx));
        b.write(out, (Ex(x) * litF(1.5, fx)).cast(fx));
    });
    // 2.0 -> 3.0; -4.0 -> -6.0 at 15 fractional bits.
    auto raw = [](double v) {
        return static_cast<uint32_t>(
            static_cast<int32_t>(v * 32768.0));
    };
    auto outs = runIss(b.finish(), {raw(2.0), raw(-4.0)});
    EXPECT_EQ(static_cast<int32_t>(outs[0]), int32_t(raw(3.0)));
    EXPECT_EQ(static_cast<int32_t>(outs[1]),
              static_cast<int32_t>(raw(-6.0)));
}

TEST(RvCodegen, DivisionHelper)
{
    constexpr Type fx = Type::fx(32, 17);
    OpBuilder b("fxdiv");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", fx);
    b.forLoop(0, 3, [&](Ex) {
        b.set(x, b.read(in).bitcast(fx));
        b.write(out, Ex(x) / litF(4.0, fx));
    });
    auto raw = [](double v) {
        return static_cast<uint32_t>(
            static_cast<int32_t>(v * 32768.0));
    };
    auto outs = runIss(b.finish(), {raw(10.0), raw(-6.0), raw(1.0)});
    EXPECT_EQ(static_cast<int32_t>(outs[0]), int32_t(raw(2.5)));
    EXPECT_EQ(static_cast<int32_t>(outs[1]),
              static_cast<int32_t>(raw(-1.5)));
    EXPECT_EQ(static_cast<int32_t>(outs[2]), int32_t(raw(0.25)));
}

TEST(RvCodegen, RomArrayAccess)
{
    OpBuilder b("romtest");
    auto in = b.input("in");
    auto out = b.output("out");
    auto w = b.rom("w", Type::s(16), {3.0, -5.0, 7.0, 11.0});
    b.forLoop(0, 4, [&](Ex i) {
        Ex x = b.read(in).bitcast(Type::s(32));
        b.write(out, x + w[i]);
    });
    auto outs = runIss(b.finish(), {100, 100, 100, 100});
    EXPECT_EQ(static_cast<int32_t>(outs[0]), 103);
    EXPECT_EQ(static_cast<int32_t>(outs[1]), 95);
    EXPECT_EQ(static_cast<int32_t>(outs[2]), 107);
    EXPECT_EQ(static_cast<int32_t>(outs[3]), 111);
}

TEST(RvCodegen, ControlFlowIfWhile)
{
    OpBuilder b("collatz_steps");
    auto in = b.input("in");
    auto out = b.output("out");
    auto n = b.var("n", Type::s(32));
    auto steps = b.var("steps", Type::s(32));
    b.set(n, b.read(in).bitcast(Type::s(32)));
    b.set(steps, lit(0));
    b.whileLoop(Ex(n) != 1,
                [&] {
                    b.ifElse(
                        (Ex(n) % lit(2)) == 0,
                        [&] { b.set(n, Ex(n) / 2); },
                        [&] { b.set(n, Ex(n) * 3 + 1); });
                    b.set(steps, Ex(steps) + 1);
                },
                32);
    b.write(out, steps);
    auto outs = runIss(b.finish(), {6});
    EXPECT_EQ(outs[0], 8u); // 6→3→10→5→16→8→4→2→1
}

TEST(RvCodegen, PrintGoesToConsole)
{
    OpBuilder b("printer");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::u(32));
    b.set(x, b.read(in));
    b.print("value:", {Ex(x)});
    b.write(out, x);
    std::string console;
    auto outs = runIss(b.finish(), {0xAB}, nullptr, &console);
    EXPECT_EQ(outs[0], 0xABu);
    EXPECT_NE(console.find("value:"), std::string::npos);
    EXPECT_NE(console.find("000000ab"), std::string::npos);
}

TEST(RvCodegen, FootprintIsCompact)
{
    // The paper reports 30-60 KB typical operator footprints; our
    // small kernels should be well under the 192 KB page limit.
    OpBuilder b("small");
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, 16, [&](Ex) { b.write(out, b.read(in)); });
    auto rv = compileToRiscv(b.finish());
    EXPECT_LT(rv.elf.footprintBytes(), 60 * 1024u);
    EXPECT_LE(rv.elf.memBytes, 192 * 1024u);
}

TEST(RvCodegen, CompileIsFast)
{
    // -O0's promise: seconds, not minutes. Ours is milliseconds.
    OpBuilder b("quick");
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, 1000, [&](Ex) {
        b.write(out, b.read(in).bitcast(Type::s(32)) + 1);
    });
    auto rv = compileToRiscv(b.finish());
    EXPECT_LT(rv.seconds, 1.0);
    EXPECT_GT(rv.instructions, 10);
}

TEST(RvCodegen, SoftcoreIsOrdersOfMagnitudeSlower)
{
    // Table 3's -O0 story: the softcore runs the same work thousands
    // of times slower than the pipelined HW estimate (~1 cycle/word).
    OpBuilder b("work");
    auto in = b.input("in");
    auto out = b.output("out");
    auto acc = b.var("acc", Type::s(32));
    b.forLoop(0, 64, [&](Ex) {
        b.set(acc, b.read(in).bitcast(Type::s(32)) * 3 + Ex(acc));
        b.write(out, acc);
    });
    uint64_t cycles = 0;
    runIss(b.finish(), std::vector<uint32_t>(64, 5), &cycles);
    EXPECT_GT(cycles / 64, 100u)
        << "each word costs 100+ softcore cycles vs ~1 on HW";
}
