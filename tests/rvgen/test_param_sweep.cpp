/**
 * Parameterized cross-target sweeps: every binary operator kind, over
 * several operand formats and random seeds, compiled to RV32 and
 * checked bit-exact against the interpreter — the strongest form of
 * the paper's single-source guarantee.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "dataflow/stream.h"
#include "interp/exec.h"
#include "ir/builder.h"
#include "rv32/iss.h"
#include "rvgen/codegen.h"

using namespace pld;
using namespace pld::ir;

namespace {

enum class Fmt { S32, U32, S16, Fx3217, Fx168 };

Type
typeOf(Fmt f)
{
    switch (f) {
      case Fmt::S32: return Type::s(32);
      case Fmt::U32: return Type::u(32);
      case Fmt::S16: return Type::s(16);
      case Fmt::Fx3217: return Type::fx(32, 17);
      case Fmt::Fx168: return Type::fx(16, 8);
    }
    return Type::s(32);
}

const char *
fmtName(Fmt f)
{
    switch (f) {
      case Fmt::S32: return "s32";
      case Fmt::U32: return "u32";
      case Fmt::S16: return "s16";
      case Fmt::Fx3217: return "fx32_17";
      case Fmt::Fx168: return "fx16_8";
    }
    return "?";
}

std::vector<uint32_t>
runPorts(const OperatorFn &fn, const std::vector<uint32_t> &inputs,
         bool use_iss)
{
    dataflow::WordFifo fin, fout;
    dataflow::FifoReadPort ip(fin);
    dataflow::FifoWritePort op(fout);
    for (uint32_t w : inputs)
        fin.push(w);
    std::vector<uint32_t> out;
    if (use_iss) {
        auto rv = rvgen::compileToRiscv(fn);
        rv32::Core core(rv.elf, {&ip, &op});
        EXPECT_EQ(core.step(200000000ull), rv32::CoreStatus::Halted)
            << core.trapReason();
    } else {
        interp::OperatorExec exec(fn, {&ip, &op});
        EXPECT_EQ(exec.run(), interp::RunStatus::Done);
    }
    while (fout.canPop())
        out.push_back(fout.pop());
    return out;
}

using Param = std::tuple<ExprKind, Fmt>;

class OpSweep : public ::testing::TestWithParam<Param>
{
};

} // namespace

TEST_P(OpSweep, IssMatchesInterpreter)
{
    auto [kind, fmt] = GetParam();
    Type t = typeOf(fmt);

    // Division is restricted to <=32-bit operands with sane
    // magnitudes; use bounded inputs for it (and Mod).
    bool divlike = (kind == ExprKind::Div || kind == ExprKind::Mod);

    OpBuilder b(std::string("sweep_") + exprKindName(kind) + "_" +
                fmtName(fmt));
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", t);
    auto y = b.var("y", t);
    b.forLoop(0, 24, [&](Ex) {
        b.set(x, b.read(in).bitcast(t));
        b.set(y, b.read(in).bitcast(t));
        Ex r(makeExpr(kind,
                      [&] {
                          switch (kind) {
                            case ExprKind::Add:
                            case ExprKind::Sub:
                              return promoteAdd(t, t);
                            case ExprKind::Mul:
                              return promoteMul(t, t);
                            case ExprKind::Div:
                              return promoteDiv(t, t);
                            default:
                              return promoteBits(t, t);
                          }
                      }(),
                      {Ex(x).node(), Ex(y).node()}));
        b.write(out, r.cast(t));
    });
    OperatorFn fn = b.finish();

    Rng rng(static_cast<uint64_t>(kind) * 131 +
            static_cast<uint64_t>(fmt));
    std::vector<uint32_t> inputs;
    for (int i = 0; i < 48; ++i) {
        if (divlike) {
            inputs.push_back(static_cast<uint32_t>(
                static_cast<int32_t>(rng.range(-100000, 100000))));
        } else {
            inputs.push_back(static_cast<uint32_t>(rng.next()));
        }
    }
    // Ensure a zero divisor shows up for div/mod.
    if (divlike)
        inputs[3] = 0;

    auto gold = runPorts(fn, inputs, false);
    auto iss = runPorts(fn, inputs, true);
    ASSERT_EQ(gold.size(), iss.size());
    for (size_t i = 0; i < gold.size(); ++i)
        EXPECT_EQ(gold[i], iss[i])
            << exprKindName(kind) << " " << fmtName(fmt) << " word "
            << i;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpSweep,
    ::testing::Combine(
        ::testing::Values(ExprKind::Add, ExprKind::Sub, ExprKind::Mul,
                          ExprKind::Div, ExprKind::Mod, ExprKind::And,
                          ExprKind::Or, ExprKind::Xor, ExprKind::Lt,
                          ExprKind::Le, ExprKind::Gt, ExprKind::Ge,
                          ExprKind::Eq, ExprKind::Ne),
        ::testing::Values(Fmt::S32, Fmt::U32, Fmt::S16, Fmt::Fx3217,
                          Fmt::Fx168)),
    [](const ::testing::TestParamInfo<Param> &info) {
        return std::string(exprKindName(std::get<0>(info.param))) +
               "_" + fmtName(std::get<1>(info.param));
    });
