/**
 * Multi-tenant fabric scheduler tests: admission control, bounded
 * request queues, DRR fairness over page-cycles, checkpoint/restore
 * across evictions (outputs bit-identical to a solo run), per-tenant
 * fault containment (a hostile tenant's scoped faults are retried,
 * rolled back, and quarantined without perturbing any neighbour),
 * the tenant-level hang watchdog with retry budget and terminal
 * failure, and scheduler determinism.
 */

#include <gtest/gtest.h>

#include "hls/schedule.h"
#include "ir/builder.h"
#include "rvgen/codegen.h"
#include "sys/tenancy.h"

using namespace pld;
using namespace pld::ir;
using sys::AdmitResult;
using sys::BatchOutput;
using sys::PageBinding;
using sys::PageImpl;
using sys::SchedStats;
using sys::SubmitResult;
using sys::SystemConfig;
using sys::SystemSim;
using sys::TenantLimits;
using sys::TenantScheduler;
using sys::TenantSpec;
using sys::TenantState;

namespace {

OperatorFn
makeAddK(const std::string &name, int k, int n)
{
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, n, [&](Ex) {
        b.write(out, b.read(in).bitcast(Type::s(32)) + k);
    });
    return b.finish();
}

Graph
makePipeline(int n)
{
    GraphBuilder gb("pipe");
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto w1 = gb.wire();
    gb.inst(makeAddK("a1", 1, n), {in}, {w1});
    gb.inst(makeAddK("a2", 10, n), {w1}, {out});
    return gb.finish();
}

std::vector<uint32_t>
iota(int n, uint32_t base = 0)
{
    std::vector<uint32_t> v;
    for (int i = 0; i < n; ++i)
        v.push_back(base + static_cast<uint32_t>(i));
    return v;
}

PageBinding
hwBinding(const Graph &g, int op, int page)
{
    PageBinding b;
    b.opIdx = op;
    b.pageId = page;
    b.impl = PageImpl::Hw;
    b.cyclesPerOp = hls::analyzeOperator(g.ops[op].fn).cyclesPerOp();
    b.imageBytes = 512;
    b.imageHash = 0xabcd0000ull + static_cast<uint64_t>(page);
    b.hasFallback = true;
    b.fallbackElf = rvgen::compileToRiscv(g.ops[op].fn).elf;
    return b;
}

TenantSpec
makeTenant(const std::string &name, const Graph &g,
           const std::string &faults = "")
{
    TenantSpec spec;
    spec.name = name;
    spec.graph = &g;
    spec.bindings = {hwBinding(g, 0, 0), hwBinding(g, 1, 5)};
    spec.sysCfg.useNoc = true;
    if (!faults.empty())
        spec.sysCfg.faults = FaultPlan::parse(faults);
    return spec;
}

/** Golden: the tenant's app run solo on a dedicated SystemSim, one
 * run() per batch. */
std::vector<std::vector<uint32_t>>
soloGolden(const Graph &g, const TenantSpec &spec,
           const std::vector<std::vector<uint32_t>> &batches)
{
    SystemConfig cfg = spec.sysCfg;
    cfg.faults = FaultPlan{}; // clean reference run
    SystemSim sim(g, spec.bindings, cfg);
    std::vector<std::vector<uint32_t>> out;
    for (const auto &batch : batches) {
        sim.loadInput(0, batch);
        EXPECT_TRUE(sim.run().completed);
        out.push_back(sim.takeOutput(0));
    }
    return out;
}

} // namespace

// -------- admission control -----------------------------------------

TEST(Tenancy, AdmissionRejectsInvalidSpecs)
{
    const int n = 8;
    Graph g = makePipeline(n);
    TenantLimits lim;
    lim.maxTenants = 2;
    TenantScheduler sched(lim);

    auto expectRejected = [](const AdmitResult &r, bool retriable) {
        EXPECT_FALSE(r.accepted);
        EXPECT_EQ(r.tenantId, -1);
        EXPECT_EQ(r.diag.code, CompileCode::AdmissionRejected);
        EXPECT_EQ(r.diag.stage, CompileStage::Tenancy);
        EXPECT_EQ(r.diag.retriable, retriable);
        EXPECT_FALSE(r.diag.detail.empty());
    };

    TenantSpec bad = makeTenant("", g);
    expectRejected(sched.admit(bad), false);

    bad = makeTenant("a/b", g);
    expectRejected(sched.admit(bad), false);

    bad = makeTenant("nograph", g);
    bad.graph = nullptr;
    expectRejected(sched.admit(bad), false);

    bad = makeTenant("nopages", g);
    bad.bindings.clear();
    expectRejected(sched.admit(bad), false);

    bad = makeTenant("duppage", g);
    bad.bindings[1].pageId = bad.bindings[0].pageId;
    expectRejected(sched.admit(bad), false);

    AdmitResult ok = sched.admit(makeTenant("t0", g));
    ASSERT_TRUE(ok.accepted);
    EXPECT_EQ(ok.tenantId, 0);

    expectRejected(sched.admit(makeTenant("t0", g)), false);

    ok = sched.admit(makeTenant("t1", g));
    ASSERT_TRUE(ok.accepted);
    EXPECT_EQ(ok.tenantId, 1);

    // maxTenants reached: the only retriable rejection.
    expectRejected(sched.admit(makeTenant("t2", g)), true);
}

TEST(Tenancy, AdmissionRejectsOversizedFootprint)
{
    const int n = 8;
    Graph g = makePipeline(n);
    TenantLimits lim;
    lim.fabricPages = 1; // two-page tenant can never be resident
    TenantScheduler sched(lim);
    AdmitResult r = sched.admit(makeTenant("wide", g));
    EXPECT_FALSE(r.accepted);
    EXPECT_NE(r.diag.detail.find("could never become resident"),
              std::string::npos)
        << r.diag.detail;
}

TEST(Tenancy, SubmitValidatesShapeAndBoundsQueue)
{
    const int n = 8;
    Graph g = makePipeline(n);
    TenantLimits lim;
    lim.requestQueueDepth = 2;
    TenantScheduler sched(lim);
    int id = sched.admit(makeTenant("t0", g)).tenantId;
    ASSERT_GE(id, 0);

    SubmitResult r = sched.submit(99, {iota(n)});
    EXPECT_FALSE(r.accepted);
    EXPECT_FALSE(r.diag.retriable);

    r = sched.submit(id, {iota(n), iota(n)}); // graph has 1 ext in
    EXPECT_FALSE(r.accepted);
    EXPECT_NE(r.diag.detail.find("input streams"),
              std::string::npos);

    EXPECT_TRUE(sched.submit(id, {iota(n)}).accepted);
    EXPECT_TRUE(sched.submit(id, {iota(n)}).accepted);
    r = sched.submit(id, {iota(n)}); // queue full
    EXPECT_FALSE(r.accepted);
    EXPECT_TRUE(r.diag.retriable);
    EXPECT_EQ(sched.tenantStats(id).rejectedSubmits, 1u);

    // run() drains the queue; a resubmit is then admitted.
    EXPECT_TRUE(sched.run().allWorkDone);
    EXPECT_TRUE(sched.submit(id, {iota(n)}).accepted);
}

// -------- correctness: solo equivalence -----------------------------

TEST(Tenancy, SingleTenantMatchesDirectRun)
{
    const int n = 64;
    Graph g = makePipeline(n);
    TenantSpec spec = makeTenant("solo", g);
    std::vector<std::vector<uint32_t>> batches = {iota(n),
                                                  iota(n, 1000)};
    auto golden = soloGolden(g, spec, batches);

    TenantScheduler sched;
    int id = sched.admit(spec).tenantId;
    ASSERT_GE(id, 0);
    for (const auto &b : batches)
        ASSERT_TRUE(sched.submit(id, {b}).accepted);

    SchedStats ss = sched.run();
    EXPECT_TRUE(ss.allWorkDone);
    auto out = sched.takeOutput(id);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].streams[0], golden[0]);
    EXPECT_EQ(out[1].streams[0], golden[1]);
    EXPECT_GT(out[0].latencyCycles, 0u);
    EXPECT_EQ(sched.tenantStats(id).batchesDone, 2u);
    EXPECT_GT(sched.tenantStats(id).latencyP50, 0u);
}

TEST(Tenancy, TimeSharingAcrossEvictionsPreservesOutputs)
{
    // Three 2-page tenants on a 2-page grid: every instatement
    // evicts the previous tenant, and a small slice forces the
    // evictions to land mid-batch. Checkpoint (drain; leaf FIFO
    // words survive) + reinstate (identical-image swap restores
    // execution state) must make every tenant's outputs
    // word-for-word identical to its solo run.
    const int n = 96;
    Graph g = makePipeline(n);
    TenantLimits lim;
    lim.fabricPages = 2;
    lim.sliceCycles = 300;
    lim.drrQuantum = 600;
    TenantScheduler sched(lim);

    std::vector<int> ids;
    std::vector<std::vector<std::vector<uint32_t>>> goldens;
    for (int t = 0; t < 3; ++t) {
        TenantSpec spec = makeTenant("t" + std::to_string(t), g);
        std::vector<std::vector<uint32_t>> batches = {
            iota(n, static_cast<uint32_t>(1000 * t))};
        goldens.push_back(soloGolden(g, spec, batches));
        int id = sched.admit(spec).tenantId;
        ASSERT_GE(id, 0);
        ASSERT_TRUE(sched.submit(id, {batches[0]}).accepted);
        ids.push_back(id);
    }

    SchedStats ss = sched.run();
    EXPECT_TRUE(ss.allWorkDone);
    EXPECT_GT(ss.evictions, 0u)
        << "a 2-page grid with three 2-page tenants must evict";
    for (size_t t = 0; t < ids.size(); ++t) {
        auto out = sched.takeOutput(ids[t]);
        ASSERT_EQ(out.size(), 1u) << "tenant " << t;
        EXPECT_EQ(out[0].streams[0], goldens[t][0])
            << "tenant " << t
            << ": eviction/reinstatement corrupted the batch";
    }
    // Reinstatement streamed images through the swap path.
    EXPECT_GT(ss.tenants[1].reinstateCycles +
                  ss.tenants[2].reinstateCycles,
              0u);
}

// -------- fairness --------------------------------------------------

TEST(Tenancy, DrrIsFairAcrossEqualTenants)
{
    const int n = 128;
    Graph g = makePipeline(n);
    TenantLimits lim;
    lim.fabricPages = 2; // force time-sharing
    lim.sliceCycles = 200;
    lim.drrQuantum = 800;
    TenantScheduler sched(lim);

    std::vector<int> ids;
    for (int t = 0; t < 4; ++t) {
        int id =
            sched.admit(makeTenant("t" + std::to_string(t), g))
                .tenantId;
        ASSERT_GE(id, 0);
        for (int b = 0; b < 2; ++b)
            ASSERT_TRUE(
                sched.submit(id, {iota(n)}).accepted);
        ids.push_back(id);
    }
    SchedStats ss = sched.run();
    EXPECT_TRUE(ss.allWorkDone);
    EXPECT_GE(ss.jainFairness, 0.95)
        << "equal tenants with equal work must get near-equal "
           "page-cycles";

    uint64_t lo = UINT64_MAX, hi = 0;
    for (int id : ids) {
        uint64_t x = sched.tenantStats(id).servedPageCycles;
        lo = std::min(lo, x);
        hi = std::max(hi, x);
        EXPECT_EQ(sched.tenantStats(id).batchesDone, 2u);
    }
    // DRR bound: the spread stays within one quantum plus one
    // maximal slice overshoot per rotation — use 2x quantum as the
    // generous structural bound.
    EXPECT_LE(hi - lo, 2 * lim.drrQuantum + 2 * lim.sliceCycles *
                                                g.ops.size())
        << "DRR deficit bound violated: " << lo << " vs " << hi;
}

// -------- fault containment -----------------------------------------

TEST(Tenancy, HostileTenantIsContainedAndNeighboursUnperturbed)
{
    // The acceptance scenario: 4 tenants share a grid; every
    // tenant's config carries the SAME fault plan, scoped by name to
    // the hostile tenant only — its config streams corrupt (heals
    // under retransmit) and its pages hang after every swap (rolls
    // back, then quarantines onto the softcore fallback). Every
    // other tenant must produce outputs bit-identical to its solo
    // run, and the hostile tenant's outputs stay correct too (the
    // fallback computes the same function).
    const int n = 64;
    Graph g = makePipeline(n);
    const std::string plan =
        "config_corrupt:hostile/a1*2;page_hang:hostile/a2";
    TenantLimits lim;
    lim.fabricPages = 4; // two of four 2-page tenants resident
    lim.sliceCycles = 400;
    lim.drrQuantum = 1600;
    lim.hangSliceLimit = 12; // hostile swaps are slow, not hung
    TenantScheduler sched(lim);

    std::vector<std::string> names = {"t0", "hostile", "t2", "t3"};
    std::vector<int> ids;
    std::vector<std::vector<std::vector<uint32_t>>> goldens;
    for (size_t t = 0; t < names.size(); ++t) {
        TenantSpec spec = makeTenant(names[t], g, plan);
        std::vector<std::vector<uint32_t>> batches = {
            iota(n, static_cast<uint32_t>(100 * t)),
            iota(n, static_cast<uint32_t>(100 * t + 50))};
        goldens.push_back(soloGolden(g, spec, batches));
        int id = sched.admit(spec).tenantId;
        ASSERT_GE(id, 0);
        for (const auto &b : batches)
            ASSERT_TRUE(sched.submit(id, {b}).accepted);
        ids.push_back(id);
    }

    // Mid-run hot swap on the hostile tenant's a2 page: activation
    // hangs (page_hang:hostile/a2) on both attempts, so the swap
    // engine must watchdog, roll back, and finally quarantine the
    // page onto its softcore fallback.
    PageBinding nb = hwBinding(g, 1, 5);
    nb.imageBytes = 512;
    nb.imageHash = 0x1111u;
    ASSERT_TRUE(
        sched.requestTenantSwap(ids[1], 5, nb).accepted);

    SchedStats ss = sched.run();
    EXPECT_TRUE(ss.allWorkDone);

    for (size_t t = 0; t < ids.size(); ++t) {
        auto out = sched.takeOutput(ids[t]);
        ASSERT_EQ(out.size(), 2u) << names[t] << " starved";
        EXPECT_EQ(out[0].streams[0], goldens[t][0]) << names[t];
        EXPECT_EQ(out[1].streams[0], goldens[t][1]) << names[t];
        EXPECT_EQ(sched.tenantState(ids[t]), TenantState::Active);
    }

    // The hostile tenant wore the faults...
    auto hostile = sched.tenantStats(ids[1]);
    EXPECT_GE(hostile.rollbacks, 1u)
        << "page_hang must trip the watchdog and roll back";
    EXPECT_GE(hostile.quarantinedPages, 1u)
        << "repeated hangs must quarantine the page";
    EXPECT_GE(hostile.retransmits, 1u)
        << "config_corrupt must retransmit";
    // ...and nobody else did.
    for (size_t t = 0; t < ids.size(); ++t) {
        if (t == 1)
            continue;
        auto s = sched.tenantStats(ids[t]);
        EXPECT_EQ(s.rollbacks, 0u) << names[t];
        EXPECT_EQ(s.quarantinedPages, 0u) << names[t];
        EXPECT_EQ(s.faultEvents, 0u) << names[t];
    }
}

TEST(Tenancy, HungTenantFailsTerminallyWithoutStarvingOthers)
{
    // A deadlocked tenant (its batch is short of the words its loop
    // expects) makes no progress: the scheduler's hang watchdog must
    // evict it, back off, retry until the budget is exhausted, then
    // fail it terminally and return its pages — while the healthy
    // tenant's batches all complete with correct outputs.
    const int n = 64;
    Graph g = makePipeline(n);
    TenantLimits lim;
    lim.fabricPages = 2;
    lim.sliceCycles = 300;
    lim.drrQuantum = 1200;
    lim.hangSliceLimit = 3;
    lim.retryBudget = 1;
    lim.backoffBaseRounds = 1;
    TenantScheduler sched(lim);

    TenantSpec good = makeTenant("good", g);
    TenantSpec dead = makeTenant("dead", g);
    int gid = sched.admit(good).tenantId;
    int did = sched.admit(dead).tenantId;
    ASSERT_GE(gid, 0);
    ASSERT_GE(did, 0);

    auto golden = soloGolden(g, good, {iota(n), iota(n, 500)});
    ASSERT_TRUE(sched.submit(gid, {iota(n)}).accepted);
    ASSERT_TRUE(sched.submit(gid, {iota(n, 500)}).accepted);
    ASSERT_TRUE(sched.submit(did, {iota(8)}).accepted); // deadlock

    SchedStats ss = sched.run();
    EXPECT_TRUE(ss.allWorkDone);

    auto out = sched.takeOutput(gid);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].streams[0], golden[0]);
    EXPECT_EQ(out[1].streams[0], golden[1]);
    EXPECT_EQ(sched.tenantState(gid), TenantState::Active);

    EXPECT_EQ(sched.tenantState(did), TenantState::Failed);
    auto ds = sched.tenantStats(did);
    EXPECT_GE(ds.hangs, 2u) << "one hang per retry plus the last";
    EXPECT_EQ(ds.faultEvents, 2u)
        << "retryBudget=1: one retried event, one terminal";
    EXPECT_EQ(ds.droppedRequests, 1u);
    EXPECT_EQ(ds.failure.code, CompileCode::TenantFaulted);
    EXPECT_FALSE(ds.failure.retriable);

    // Its pages went back to the grid: at most `good` still holds
    // slots (it may itself have been evicted by the dead tenant's
    // final retry and never re-instated — it had no work left).
    EXPECT_LE(sched.residentPages(), 2);
    // ...and new work is refused with the terminal diagnostic.
    SubmitResult r = sched.submit(did, {iota(n)});
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(r.diag.code, CompileCode::TenantFaulted);
}

// -------- determinism -----------------------------------------------

TEST(Tenancy, ScheduleIsBitReproducible)
{
    // The whole hostile scenario — evictions, reinstatement swaps,
    // injected faults, DRR rotation — must be a pure function of
    // its inputs: two fresh schedulers produce identical outputs,
    // identical per-tenant accounting, and an identical fabric
    // clock.
    const int n = 48;
    Graph g = makePipeline(n);
    const std::string plan = "config_corrupt:hostile/a1*2";

    auto runOnce = [&](std::vector<std::vector<BatchOutput>> *outs) {
        TenantLimits lim;
        lim.fabricPages = 2;
        lim.sliceCycles = 250;
        lim.drrQuantum = 1000;
        TenantScheduler sched(lim);
        std::vector<int> ids;
        for (const char *name : {"t0", "hostile", "t2"}) {
            int id = sched.admit(makeTenant(name, g, plan)).tenantId;
            EXPECT_GE(id, 0);
            EXPECT_TRUE(sched.submit(id, {iota(n)}).accepted);
            ids.push_back(id);
        }
        SchedStats ss = sched.run();
        for (int id : ids)
            outs->push_back(sched.takeOutput(id));
        return ss;
    };

    std::vector<std::vector<BatchOutput>> out1, out2;
    SchedStats a = runOnce(&out1);
    SchedStats b = runOnce(&out2);

    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.slices, b.slices);
    EXPECT_EQ(a.virtualCycles, b.virtualCycles);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_DOUBLE_EQ(a.jainFairness, b.jainFairness);
    ASSERT_EQ(out1.size(), out2.size());
    for (size_t t = 0; t < out1.size(); ++t) {
        ASSERT_EQ(out1[t].size(), out2[t].size());
        for (size_t i = 0; i < out1[t].size(); ++i) {
            EXPECT_EQ(out1[t][i].streams, out2[t][i].streams);
            EXPECT_EQ(out1[t][i].latencyCycles,
                      out2[t][i].latencyCycles);
        }
        EXPECT_EQ(a.tenants[t].servedPageCycles,
                  b.tenants[t].servedPageCycles);
        EXPECT_EQ(a.tenants[t].slices, b.tenants[t].slices);
    }
}
