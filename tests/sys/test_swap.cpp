/**
 * Hot-swap engine tests: live page reconfiguration with the
 * fault-tolerant runtime. Covers the drain/quiesce guarantee (no
 * in-flight flit of a non-target page is lost or reordered — outputs
 * are word-for-word identical to a no-swap run), the CRC'd config
 * stream (retransmit on corruption and drop, exponential backoff,
 * bounded retries), the reconfiguration watchdog, rollback to the
 * previous image, the quarantine-to-softcore policy, and the
 * run-timeout telemetry. Every fault scenario is driven by FaultPlan
 * so it is bit-reproducible.
 */

#include <gtest/gtest.h>

#include "dataflow/runtime.h"
#include "hls/schedule.h"
#include "ir/builder.h"
#include "obs/trace.h"
#include "rvgen/codegen.h"
#include "sys/system.h"

using namespace pld;
using namespace pld::ir;
using sys::PageBinding;
using sys::PageImpl;
using sys::SwapOutcome;
using sys::SwapRequestResult;
using sys::SwapResult;
using sys::SystemConfig;
using sys::SystemSim;

namespace {

OperatorFn
makeAddK(const std::string &name, int k, int n)
{
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, n, [&](Ex) {
        b.write(out, b.read(in).bitcast(Type::s(32)) + k);
    });
    return b.finish();
}

Graph
makePipeline(int n)
{
    GraphBuilder gb("pipe");
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto w1 = gb.wire();
    gb.inst(makeAddK("a1", 1, n), {in}, {w1});
    gb.inst(makeAddK("a2", 10, n), {w1}, {out});
    return gb.finish();
}

std::vector<uint32_t>
iota(int n)
{
    std::vector<uint32_t> v;
    for (int i = 0; i < n; ++i)
        v.push_back(static_cast<uint32_t>(i));
    return v;
}

PageBinding
hwBinding(const Graph &g, int op, int page)
{
    PageBinding b;
    b.opIdx = op;
    b.pageId = page;
    b.impl = PageImpl::Hw;
    b.cyclesPerOp = hls::analyzeOperator(g.ops[op].fn).cyclesPerOp();
    return b;
}

/** A replacement image for the same function: re-timed (different
 * cyclesPerOp) with a known partial-image footprint. */
PageBinding
swapImage(const PageBinding &old, uint64_t image_bytes,
          double cycles_per_op)
{
    PageBinding nb = old;
    nb.cyclesPerOp = cycles_per_op;
    nb.imageBytes = image_bytes;
    nb.imageHash = 0x5eedf00dull + image_bytes;
    return nb;
}

/** Attach the quarantine fallback: the softcore binary of @p fn at
 * @p tier (the compiler attaches -Os by default; -O0 is the
 * paper-faithful baseline). */
void
attachFallback(PageBinding &nb, const OperatorFn &fn,
               rvgen::Tier tier = rvgen::Tier::O0)
{
    rvgen::RvOptions ro;
    ro.tier = tier;
    nb.hasFallback = true;
    nb.fallbackElf = rvgen::compileToRiscv(fn, ro).elf;
}

SystemConfig
swapCfg(const std::string &faults = "")
{
    SystemConfig cfg;
    cfg.useNoc = true;
    cfg.swapPacketBytes = 128;
    cfg.swapMaxRetransmits = 4;
    cfg.swapMaxAttempts = 2;
    if (!faults.empty())
        cfg.faults = FaultPlan::parse(faults);
    return cfg;
}

} // namespace

// -------- drain / quiesce golden equivalence ------------------------

TEST(Swap, MidRunSwapPreservesAllOutputWords)
{
    // A re-timed image is swapped onto a1's page while the pipeline
    // is streaming. The swap engine must drain only the target leaf;
    // every in-flight flit of the rest of the system survives, so the
    // output is word-for-word identical to a run with no swap at all.
    const int n = 256;
    Graph g = makePipeline(n);

    SystemSim ref(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg());
    ref.loadInput(0, iota(n));
    ASSERT_TRUE(ref.run().completed);
    auto golden = ref.takeOutput(0);

    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg());
    PageBinding nb = swapImage(hwBinding(g, 0, 0), 1024, 3.0);
    sim.requestSwap(0, nb, /*at_cycle=*/50);
    sim.loadInput(0, iota(n));
    auto rs = sim.run();
    ASSERT_TRUE(rs.completed);
    EXPECT_EQ(sim.takeOutput(0), golden)
        << "a hot swap must not lose or reorder any word";

    ASSERT_EQ(sim.swapHistory().size(), 1u);
    const SwapResult &r = sim.swapHistory()[0];
    EXPECT_EQ(r.outcome, SwapOutcome::Swapped);
    EXPECT_EQ(r.packets, 1024u / 128u);
    EXPECT_EQ(r.retransmits, 0u);
    EXPECT_EQ(r.rollbacks, 0);
    EXPECT_FALSE(r.watchdogFired);
}

TEST(Swap, QueuedSwapStillRunsWhenWorkDrainsEarly)
{
    // The requested start cycle lies beyond the workload: the run
    // must not strand the queued swap — it starts once the pages go
    // quiet and completes before run() returns.
    const int n = 16;
    Graph g = makePipeline(n);
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg());
    sim.requestSwap(0, swapImage(hwBinding(g, 0, 0), 256, 2.0),
                    /*at_cycle=*/10000000ull);
    sim.loadInput(0, iota(n));
    auto rs = sim.run();
    ASSERT_TRUE(rs.completed);
    ASSERT_EQ(sim.swapHistory().size(), 1u);
    EXPECT_EQ(sim.swapHistory()[0].outcome, SwapOutcome::Swapped);
}

TEST(Swap, SynchronousSwapBetweenBatches)
{
    const int n = 8;
    Graph g = makePipeline(n);
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg());
    sim.loadInput(0, iota(n));
    ASSERT_TRUE(sim.run().completed);
    auto out1 = sim.takeOutput(0);
    ASSERT_EQ(out1.size(), static_cast<size_t>(n));

    // 1000 bytes / 128-byte packets -> 8 packets.
    SwapResult r =
        sim.swapPage(5, swapImage(hwBinding(g, 1, 5), 1000, 2.0));
    EXPECT_EQ(r.outcome, SwapOutcome::Swapped);
    EXPECT_EQ(r.packets, 8u);
    EXPECT_EQ(r.attempts, 1);
    EXPECT_GT(r.cycles, 0u);

    // The swapped page still computes: batch 2 matches batch 1.
    sim.loadInput(0, iota(n));
    ASSERT_TRUE(sim.run().completed);
    EXPECT_EQ(sim.takeOutput(0), out1);
}

TEST(Swap, FunctionEditSwapRestartsOperator)
{
    // A function-changing swap (the edit→recompile→hot-swap loop):
    // after the swap the page runs the edited operator from its entry
    // state, so the next batch computes the new function.
    const int n = 8;
    Graph g = makePipeline(n);
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg());
    sim.loadInput(0, iota(n));
    ASSERT_TRUE(sim.run().completed);
    auto out1 = sim.takeOutput(0);
    for (int i = 0; i < n; ++i)
        ASSERT_EQ(out1[i], static_cast<uint32_t>(i + 11));

    OperatorFn edited = makeAddK("a2", 100, n);
    PageBinding nb = swapImage(hwBinding(g, 1, 5), 512, 1.0);
    nb.cyclesPerOp = hls::analyzeOperator(edited).cyclesPerOp();
    SwapResult r = sim.swapPage(5, nb, &edited);
    EXPECT_EQ(r.outcome, SwapOutcome::Swapped);

    sim.loadInput(0, iota(n));
    ASSERT_TRUE(sim.run().completed);
    auto out2 = sim.takeOutput(0);
    ASSERT_EQ(out2.size(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(out2[i], static_cast<uint32_t>(i + 1 + 100));
}

// -------- CRC, retransmit, backoff ----------------------------------

TEST(Swap, CrcCorruptionRetransmitsAndHeals)
{
    // Every packet's first two transmissions are corrupted in flight;
    // the page's CRC-32 check NAKs each one and the third try lands.
    const int n = 8;
    Graph g = makePipeline(n);
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg("config_corrupt:a1*2"));
    SwapResult r =
        sim.swapPage(0, swapImage(hwBinding(g, 0, 0), 512, 2.0));
    EXPECT_EQ(r.outcome, SwapOutcome::Swapped);
    EXPECT_EQ(r.packets, 4u);
    EXPECT_EQ(r.crcErrors, 2u * 4u);
    EXPECT_EQ(r.retransmits, r.crcErrors);
    EXPECT_EQ(r.drops, 0u);
    EXPECT_EQ(r.rollbacks, 0);
}

TEST(Swap, DroppedPacketsDetectedByAckTimeout)
{
    // Each packet's first transmission is dropped; the sender only
    // learns via the ack timeout, so the swap takes measurably longer
    // than the fault-free one but still succeeds.
    const int n = 8;
    Graph g = makePipeline(n);

    SystemSim clean(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                    swapCfg());
    SwapResult rc =
        clean.swapPage(0, swapImage(hwBinding(g, 0, 0), 512, 2.0));
    ASSERT_EQ(rc.outcome, SwapOutcome::Swapped);

    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg("config_drop:a1*1"));
    SwapResult r =
        sim.swapPage(0, swapImage(hwBinding(g, 0, 0), 512, 2.0));
    EXPECT_EQ(r.outcome, SwapOutcome::Swapped);
    EXPECT_EQ(r.drops, 4u);
    EXPECT_EQ(r.retransmits, 4u);
    EXPECT_EQ(r.crcErrors, 0u);
    EXPECT_GT(r.cycles, rc.cycles)
        << "ack timeouts and backoff must cost cycles";
}

TEST(Swap, RetransmitExhaustionRollsBackThenSucceeds)
{
    // Attempt 0 (fault coordinates 0..15) can never deliver packet 0:
    // five corrupted transmissions exhaust the retransmit budget and
    // the engine rolls back to the old image. Attempt 1 (coordinates
    // 16+) sees two corruptions per packet and completes.
    const int n = 8;
    Graph g = makePipeline(n);
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg("config_corrupt:a1*18"));
    SwapResult r =
        sim.swapPage(0, swapImage(hwBinding(g, 0, 0), 512, 2.0));
    EXPECT_EQ(r.outcome, SwapOutcome::Swapped);
    EXPECT_EQ(r.attempts, 2);
    EXPECT_EQ(r.rollbacks, 1);
    // Attempt 0: 5 corruptions, 4 retransmits (the 5th aborts).
    // Attempt 1: 2 corruptions + 2 retransmits per packet, 4 packets.
    EXPECT_EQ(r.crcErrors, 5u + 2u * 4u);
    EXPECT_EQ(r.retransmits, 4u + 2u * 4u);
    EXPECT_FALSE(r.watchdogFired);
}

// -------- watchdog, rollback, quarantine ----------------------------

TEST(Swap, PageHangTripsWatchdogThenRetrySucceeds)
{
    // The first activation hangs (the page never reports up); only
    // the watchdog can notice. It aborts the attempt, the engine
    // rolls back, and the second attempt activates cleanly.
    const int n = 8;
    Graph g = makePipeline(n);
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg("page_hang:a2*1"));
    SwapResult r =
        sim.swapPage(5, swapImage(hwBinding(g, 1, 5), 256, 2.0));
    EXPECT_EQ(r.outcome, SwapOutcome::Swapped);
    EXPECT_TRUE(r.watchdogFired);
    EXPECT_EQ(r.rollbacks, 1);
    EXPECT_EQ(r.attempts, 2);
}

TEST(Swap, DmaStallAddsExactlyItsCycles)
{
    const int n = 8;
    Graph g = makePipeline(n);

    SystemSim clean(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                    swapCfg());
    SwapResult rc =
        clean.swapPage(0, swapImage(hwBinding(g, 0, 0), 512, 2.0));

    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg("dma_stall:a1*1"));
    SwapResult r =
        sim.swapPage(0, swapImage(hwBinding(g, 0, 0), 512, 2.0));
    EXPECT_EQ(r.outcome, SwapOutcome::Swapped);
    EXPECT_EQ(r.dmaStalls, 1u);
    SystemConfig cfg = swapCfg();
    EXPECT_EQ(r.cycles, rc.cycles + cfg.swapDmaStallCycles)
        << "a stalled config channel freezes for exactly its window";
}

TEST(Swap, QuarantinePinsPageToSoftcoreFallback)
{
    // Corruption never stops: both attempts exhaust their retransmit
    // budgets, and after the final rollback the page is quarantined
    // onto its -O0 softcore fallback — the runtime's mixed-mode
    // continuation of the compile-time retry ladder.
    const int n = 8;
    Graph g = makePipeline(n);
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg("config_corrupt:a1"));
    PageBinding nb = swapImage(hwBinding(g, 0, 0), 512, 2.0);
    attachFallback(nb, g.ops[0].fn);
    SwapResult r = sim.swapPage(0, nb);
    EXPECT_EQ(r.outcome, SwapOutcome::Quarantined);
    EXPECT_EQ(r.attempts, 2);
    EXPECT_EQ(r.rollbacks, 2);
    EXPECT_EQ(r.crcErrors, 10u);
    EXPECT_TRUE(sim.pageQuarantined(0));
    EXPECT_EQ(sim.pageImpl(0), PageImpl::Softcore);

    // Quarantine is sticky: further swaps are rejected outright.
    SwapResult again = sim.swapPage(0, nb);
    EXPECT_EQ(again.outcome, SwapOutcome::Rejected);

    // The fallback implements the same function: the app still runs
    // and produces the correct words.
    sim.loadInput(0, iota(n));
    ASSERT_TRUE(sim.run().completed);
    auto out = sim.takeOutput(0);
    ASSERT_EQ(out.size(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(out[i], static_cast<uint32_t>(i + 11));
}

TEST(Swap, QuarantineOsFallbackMatchesO0AndFaultFree)
{
    // A page quarantined onto an -Os fallback image must produce the
    // same words as the -O0 fallback and as the never-faulted run —
    // the optimizing tier is invisible to the fault-containment
    // story.
    const int n = 8;
    Graph g = makePipeline(n);

    SystemSim ref(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg());
    ref.loadInput(0, iota(n));
    ASSERT_TRUE(ref.run().completed);
    auto golden = ref.takeOutput(0);

    auto quarantined = [&](rvgen::Tier tier) {
        SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                      swapCfg("config_corrupt:a1"));
        PageBinding nb = swapImage(hwBinding(g, 0, 0), 512, 2.0);
        attachFallback(nb, g.ops[0].fn, tier);
        EXPECT_EQ(sim.swapPage(0, nb).outcome,
                  SwapOutcome::Quarantined);
        EXPECT_EQ(sim.pageImpl(0), PageImpl::Softcore);
        sim.loadInput(0, iota(n));
        EXPECT_TRUE(sim.run().completed);
        return sim.takeOutput(0);
    };

    auto o0 = quarantined(rvgen::Tier::O0);
    auto os = quarantined(rvgen::Tier::Os);
    EXPECT_EQ(o0, golden);
    EXPECT_EQ(os, golden)
        << "-Os quarantine fallback diverged from fault-free run";
    EXPECT_EQ(os, o0);
}

TEST(Swap, QuarantineWithoutFallbackKeepsOldImage)
{
    const int n = 8;
    Graph g = makePipeline(n);
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg("config_corrupt:a1"));
    SwapResult r =
        sim.swapPage(0, swapImage(hwBinding(g, 0, 0), 512, 2.0));
    EXPECT_EQ(r.outcome, SwapOutcome::Quarantined);
    EXPECT_TRUE(sim.pageQuarantined(0));
    EXPECT_EQ(sim.pageImpl(0), PageImpl::Hw)
        << "no fallback: the old image stays pinned";

    sim.loadInput(0, iota(n));
    ASSERT_TRUE(sim.run().completed);
    auto out = sim.takeOutput(0);
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(out[i], static_cast<uint32_t>(i + 11));
}

TEST(Swap, UnknownPageIsRejected)
{
    const int n = 8;
    Graph g = makePipeline(n);
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg());
    SwapResult r =
        sim.swapPage(17, swapImage(hwBinding(g, 0, 0), 512, 2.0));
    EXPECT_EQ(r.outcome, SwapOutcome::Rejected);
}

// -------- determinism -----------------------------------------------

TEST(Swap, FaultScenarioIsBitReproducible)
{
    // The whole scenario — drops, corruptions, rollbacks — is a pure
    // function of (seed, kind, op, attempt): two fresh systems agree
    // on every counter of the result.
    const int n = 64;
    Graph g = makePipeline(n);
    auto run_once = [&](SwapResult &r, std::vector<uint32_t> &out) {
        SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                      swapCfg("config_corrupt:a1*18;config_drop:a2*1"));
        sim.requestSwap(0, swapImage(hwBinding(g, 0, 0), 512, 2.0),
                        /*at_cycle=*/40);
        sim.loadInput(0, iota(n));
        EXPECT_TRUE(sim.run().completed);
        out = sim.takeOutput(0);
        ASSERT_EQ(sim.swapHistory().size(), 1u);
        r = sim.swapHistory()[0];
    };
    SwapResult r1, r2;
    std::vector<uint32_t> o1, o2;
    run_once(r1, o1);
    run_once(r2, o2);
    EXPECT_EQ(o1, o2);
    EXPECT_EQ(r1.outcome, r2.outcome);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.packets, r2.packets);
    EXPECT_EQ(r1.retransmits, r2.retransmits);
    EXPECT_EQ(r1.crcErrors, r2.crcErrors);
    EXPECT_EQ(r1.drops, r2.drops);
    EXPECT_EQ(r1.attempts, r2.attempts);
    EXPECT_EQ(r1.rollbacks, r2.rollbacks);
}

// -------- observability ---------------------------------------------

TEST(Swap, TelemetryCountsEveryRecoveryAction)
{
    obs::ScopedTracer st;
    const int n = 8;
    Graph g = makePipeline(n);
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg("config_corrupt:a1*18"));
    SwapResult r =
        sim.swapPage(0, swapImage(hwBinding(g, 0, 0), 512, 2.0));
    ASSERT_EQ(r.outcome, SwapOutcome::Swapped);

    obs::MetricsSnapshot m = st.tracer().metrics().snapshot();
    EXPECT_EQ(m.counter("sys.swap.requests"), 1);
    EXPECT_EQ(m.counter("sys.swap.completed"), 1);
    EXPECT_EQ(m.counter("sys.swap.rollbacks"), 1);
    EXPECT_EQ(m.counter("sys.swap.crc_errors"),
              static_cast<int64_t>(r.crcErrors));
    EXPECT_EQ(m.counter("sys.swap.retransmits"),
              static_cast<int64_t>(r.retransmits));
    const obs::DistSummary *d = m.dist("sys.swap.cycles");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->count, 1u);
    EXPECT_DOUBLE_EQ(d->max, static_cast<double>(r.cycles));
}

TEST(Swap, RunTimeoutEmitsCounterAndCompletedFalse)
{
    // Satellite: a run that hits max_cycles returns completed=false
    // AND leaves a loud sys.run.timeout mark in the telemetry.
    obs::ScopedTracer st;
    const int n = 8;
    Graph g = makePipeline(n);
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg());
    sim.loadInput(0, iota(n / 2)); // starve the pipeline
    auto rs = sim.run(20000);
    EXPECT_FALSE(rs.completed);

    obs::MetricsSnapshot m = st.tracer().metrics().snapshot();
    EXPECT_EQ(m.counter("sys.run.timeouts"), 1);
    bool saw_instant = false;
    for (const obs::Event *e : st.tracer().allEvents())
        saw_instant |= e->name == "sys.run.timeout";
    EXPECT_TRUE(saw_instant);
}

// -------- admission: requestSwap rejection paths --------------------

TEST(Swap, RequestSwapRejectsStructurally)
{
    // Satellite: every doomed request is rejected at queueing time
    // with a structured diagnostic, never queued to fail silently.
    const int n = 8;
    Graph g = makePipeline(n);
    SystemConfig cfg = swapCfg();
    cfg.swapQueueDepth = 2;
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)}, cfg);
    PageBinding nb0 = swapImage(hwBinding(g, 0, 0), 256, 2.0);
    PageBinding nb5 = swapImage(hwBinding(g, 1, 5), 256, 2.0);

    // Unknown page: permanent.
    SwapRequestResult r = sim.requestSwap(17, nb0, 0);
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(r.diag.code, CompileCode::SwapRejected);
    EXPECT_EQ(r.diag.stage, CompileStage::Swap);
    EXPECT_EQ(r.diag.page, 17);
    EXPECT_FALSE(r.diag.retriable);

    EXPECT_TRUE(sim.requestSwap(0, nb0, 0).accepted);
    EXPECT_EQ(sim.pendingSwapRequests(), 1u);

    // Duplicate target: conflicting images cannot be queued.
    r = sim.requestSwap(0, nb0, 100);
    EXPECT_FALSE(r.accepted);
    EXPECT_TRUE(r.diag.retriable);
    EXPECT_NE(r.diag.detail.find("already targets"),
              std::string::npos);

    // Queue bound.
    EXPECT_TRUE(sim.requestSwap(5, nb5, 0).accepted);
    r = sim.requestSwap(5, nb5, 200);
    EXPECT_FALSE(r.accepted); // duplicate fires first
    EXPECT_EQ(sim.pendingSwapRequests(), 2u);
    SystemSim sim2(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                   cfg);
    EXPECT_TRUE(sim2.requestSwap(0, nb0, 0).accepted);
    EXPECT_TRUE(sim2.requestSwap(5, nb5, 0).accepted);
    PageBinding nb0b = swapImage(hwBinding(g, 0, 0), 512, 2.0);
    r = sim2.requestSwap(0, nb0b, 300); // depth 2 reached
    EXPECT_FALSE(r.accepted);
    EXPECT_TRUE(r.diag.retriable);
    EXPECT_NE(r.diag.detail.find("queue full"), std::string::npos);

    // Quarantined page: permanent.
    SystemSim sim3(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                   swapCfg("config_corrupt:a1"));
    PageBinding qb = swapImage(hwBinding(g, 0, 0), 512, 2.0);
    attachFallback(qb, g.ops[0].fn);
    ASSERT_EQ(sim3.swapPage(0, qb).outcome,
              SwapOutcome::Quarantined);
    r = sim3.requestSwap(0, qb, 0);
    EXPECT_FALSE(r.accepted);
    EXPECT_FALSE(r.diag.retriable);
    EXPECT_NE(r.diag.detail.find("quarantined"), std::string::npos);

    // The accepted queue still executes: both queued swaps land.
    sim.loadInput(0, iota(n));
    ASSERT_TRUE(sim.run().completed);
    EXPECT_EQ(sim.pendingSwapRequests(), 0u);
    EXPECT_EQ(sim.swapHistory().size(), 2u);
}

// -------- quarantine vs re-arm regression ---------------------------

TEST(Swap, QuarantinedPageStaysPinnedAcrossBatches)
{
    // Regression: re-arming pages for batch 2 must not disturb a
    // quarantined page — the softcore fallback stays pinned and
    // computes the same function, so every later batch matches the
    // pre-quarantine golden word-for-word.
    const int n = 8;
    Graph g = makePipeline(n);
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)},
                  swapCfg("config_corrupt:a1"));
    sim.loadInput(0, iota(n));
    ASSERT_TRUE(sim.run().completed);
    auto golden = sim.takeOutput(0);
    ASSERT_EQ(golden.size(), static_cast<size_t>(n));

    PageBinding nb = swapImage(hwBinding(g, 0, 0), 512, 2.0);
    attachFallback(nb, g.ops[0].fn);
    ASSERT_EQ(sim.swapPage(0, nb).outcome,
              SwapOutcome::Quarantined);
    ASSERT_EQ(sim.pageImpl(0), PageImpl::Softcore);

    for (int batch = 2; batch <= 3; ++batch) {
        sim.loadInput(0, iota(n));
        ASSERT_TRUE(sim.run().completed) << "batch " << batch;
        EXPECT_EQ(sim.takeOutput(0), golden) << "batch " << batch;
        EXPECT_TRUE(sim.pageQuarantined(0)) << "batch " << batch;
        EXPECT_EQ(sim.pageImpl(0), PageImpl::Softcore)
            << "re-arm must not resurrect the quarantined image";
    }
}
