#include <gtest/gtest.h>

#include "dataflow/runtime.h"
#include "hls/schedule.h"
#include "ir/builder.h"
#include "rvgen/codegen.h"
#include "sys/system.h"

using namespace pld;
using namespace pld::ir;
using sys::PageBinding;
using sys::PageImpl;
using sys::SystemConfig;
using sys::SystemSim;

namespace {

OperatorFn
makeAddK(const std::string &name, int k, int n)
{
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, n, [&](Ex) {
        b.write(out, b.read(in).bitcast(Type::s(32)) + k);
    });
    return b.finish();
}

Graph
makePipeline(int n)
{
    GraphBuilder gb("pipe");
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto w1 = gb.wire();
    gb.inst(makeAddK("a1", 1, n), {in}, {w1});
    gb.inst(makeAddK("a2", 10, n), {w1}, {out});
    return gb.finish();
}

std::vector<uint32_t>
iota(int n)
{
    std::vector<uint32_t> v;
    for (int i = 0; i < n; ++i)
        v.push_back(static_cast<uint32_t>(i));
    return v;
}

PageBinding
hwBinding(const Graph &g, int op, int page)
{
    PageBinding b;
    b.opIdx = op;
    b.pageId = page;
    b.impl = PageImpl::Hw;
    b.cyclesPerOp = hls::analyzeOperator(g.ops[op].fn).cyclesPerOp();
    return b;
}

PageBinding
swBinding(const Graph &g, int op, int page)
{
    PageBinding b;
    b.opIdx = op;
    b.pageId = page;
    b.impl = PageImpl::Softcore;
    b.elf = rvgen::compileToRiscv(g.ops[op].fn).elf;
    return b;
}

} // namespace

TEST(SystemSim, NocModeMatchesFunctionalModel)
{
    const int n = 32;
    Graph g = makePipeline(n);

    dataflow::GraphRuntime gold(g);
    gold.pushInput(0, iota(n));
    ASSERT_TRUE(gold.run());
    auto expected = gold.takeOutput(0);

    SystemConfig cfg;
    cfg.useNoc = true;
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)}, cfg);
    sim.loadInput(0, iota(n));
    auto rs = sim.run();
    ASSERT_TRUE(rs.completed);
    EXPECT_EQ(sim.takeOutput(0), expected);
    EXPECT_GT(rs.configCycles, 0u) << "linking phase ran";
}

TEST(SystemSim, DirectModeMatchesFunctionalModel)
{
    const int n = 32;
    Graph g = makePipeline(n);

    dataflow::GraphRuntime gold(g);
    gold.pushInput(0, iota(n));
    ASSERT_TRUE(gold.run());
    auto expected = gold.takeOutput(0);

    SystemConfig cfg;
    cfg.useNoc = false;
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 1)}, cfg);
    sim.loadInput(0, iota(n));
    auto rs = sim.run();
    ASSERT_TRUE(rs.completed);
    EXPECT_EQ(sim.takeOutput(0), expected);
}

TEST(SystemSim, SoftcorePagesProduceSameOutput)
{
    const int n = 8;
    Graph g = makePipeline(n);

    SystemConfig cfg;
    cfg.useNoc = true;
    SystemSim sim(g, {swBinding(g, 0, 0), swBinding(g, 1, 5)}, cfg);
    sim.loadInput(0, iota(n));
    auto rs = sim.run();
    ASSERT_TRUE(rs.completed);
    auto out = sim.takeOutput(0);
    ASSERT_EQ(out.size(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(out[i], static_cast<uint32_t>(i + 11));
}

TEST(SystemSim, MixedHwAndSoftcore)
{
    const int n = 8;
    Graph g = makePipeline(n);

    SystemConfig cfg;
    SystemSim sim(g, {hwBinding(g, 0, 0), swBinding(g, 1, 5)}, cfg);
    sim.loadInput(0, iota(n));
    auto rs = sim.run();
    ASSERT_TRUE(rs.completed);
    auto out = sim.takeOutput(0);
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(out[i], static_cast<uint32_t>(i + 11));
}

TEST(SystemSim, SoftcoreIsMuchSlowerThanHw)
{
    const int n = 64;
    Graph g = makePipeline(n);

    SystemConfig cfg;
    SystemSim hw(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 5)}, cfg);
    hw.loadInput(0, iota(n));
    auto hw_rs = hw.run();

    SystemSim sw(g, {swBinding(g, 0, 0), swBinding(g, 1, 5)}, cfg);
    sw.loadInput(0, iota(n));
    auto sw_rs = sw.run();

    ASSERT_TRUE(hw_rs.completed && sw_rs.completed);
    EXPECT_GT(sw_rs.cycles, hw_rs.cycles * 10)
        << "the -O0 softcore must be orders slower (Table 3)";
}

TEST(SystemSim, DirectLinksFasterThanNoc)
{
    // The -O1 overlay pays network sharing costs vs -O3 direct FIFOs
    // (Table 3: -O1 runs 1.5-10x slower).
    const int n = 256;
    Graph g = makePipeline(n);

    SystemConfig noc_cfg;
    noc_cfg.useNoc = true;
    SystemSim noc_sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 21)},
                      noc_cfg);
    noc_sim.loadInput(0, iota(n));
    auto noc_rs = noc_sim.run();

    SystemConfig dir_cfg;
    dir_cfg.useNoc = false;
    SystemSim dir_sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 1)},
                      dir_cfg);
    dir_sim.loadInput(0, iota(n));
    auto dir_rs = dir_sim.run();

    ASSERT_TRUE(noc_rs.completed && dir_rs.completed);
    EXPECT_GT(noc_rs.cycles, dir_rs.cycles);
}

TEST(SystemSim, ForkJoinGraphOnNoc)
{
    const int n = 16;
    OpBuilder sb("split");
    auto si = sb.input("in");
    auto sa = sb.output("a");
    auto sc = sb.output("b");
    auto sx = sb.var("x", Type::s(32));
    sb.forLoop(0, n, [&](Ex) {
        sb.set(sx, sb.read(si).bitcast(Type::s(32)));
        sb.write(sa, sx);
        sb.write(sc, sx);
    });

    OpBuilder jb("join");
    auto ja = jb.input("a");
    auto jc = jb.input("b");
    auto jo = jb.output("out");
    auto jx = jb.var("x", Type::s(32));
    jb.forLoop(0, n, [&](Ex) {
        jb.set(jx, jb.read(ja).bitcast(Type::s(32)));
        jb.write(jo, Ex(jx) + jb.read(jc).bitcast(Type::s(32)));
    });

    GraphBuilder gb("diamond");
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto wa = gb.wire(), wb = gb.wire();
    gb.inst(sb.finish(), {in}, {wa, wb});
    gb.inst(jb.finish(), {wa, wb}, {out});
    Graph g = gb.finish();

    SystemConfig cfg;
    SystemSim sim(g, {hwBinding(g, 0, 2), hwBinding(g, 1, 9)}, cfg);
    sim.loadInput(0, iota(n));
    auto rs = sim.run();
    ASSERT_TRUE(rs.completed);
    auto outw = sim.takeOutput(0);
    ASSERT_EQ(outw.size(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(outw[i], static_cast<uint32_t>(2 * i));
}

TEST(SystemSim, IncompleteInputTimesOut)
{
    const int n = 8;
    Graph g = makePipeline(n);
    SystemConfig cfg;
    SystemSim sim(g, {hwBinding(g, 0, 0), hwBinding(g, 1, 1)}, cfg);
    sim.loadInput(0, iota(n / 2)); // starve the pipeline
    auto rs = sim.run(20000);
    EXPECT_FALSE(rs.completed);
}
