#include <gtest/gtest.h>

#include "fabric/device.h"
#include "hls/compiler.h"
#include "hls/synthesis.h"
#include "ir/builder.h"
#include "pnr/engine.h"

using namespace pld;
using namespace pld::ir;
using namespace pld::pnr;
using fabric::Device;
using fabric::makeU50;
using fabric::Rect;

namespace {

const Device &
device()
{
    static Device d = makeU50();
    return d;
}

OperatorFn
makeKernel(const std::string &name, int taps)
{
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    auto w = b.array("w", Type::fx(16, 8), taps);
    auto acc = b.var("acc", Type::fx(32, 17));
    b.forLoop(0, taps, [&](Ex i) {
        b.store(w, i, b.read(in).bitcast(Type::fx(16, 8)));
    });
    b.forLoop(0, 256, [&](Ex i) {
        Ex x = b.read(in).bitcast(Type::fx(32, 17));
        b.set(acc, Ex(acc) + x * w[i % lit(taps)]);
        b.write(out, acc);
    });
    return b.finish();
}

netlist::Netlist
compiled(const std::string &name, int taps, bool leaf)
{
    auto r = hls::compileOperator(makeKernel(name, taps), leaf);
    hls::synthesize(r.net);
    return std::move(r.net);
}

} // namespace

TEST(Engine, PageCompileSucceeds)
{
    auto nl = compiled("k1", 8, true);
    PnrOptions opts;
    opts.effort = 0.3;
    PnrResult res =
        placeAndRoute(nl, device(), device().pages[0].rect, opts);
    EXPECT_TRUE(res.success);
    EXPECT_GT(res.timing.fmaxMHz, 50.0);
    EXPECT_LE(res.timing.fmaxMHz, 300.0);
    EXPECT_GT(res.bits.bytes, 0u);
}

TEST(Engine, BitstreamSizeTracksRegion)
{
    auto nl = compiled("k2", 8, true);
    Bitstream page_bits =
        generateBitstream(nl, device().pages[0].rect);
    Rect user{0, 0, 120, 576};
    Bitstream full_bits = generateBitstream(nl, user);
    // Partial bitstreams are much smaller (Sec 2.3: tens of KB vs
    // hundreds of MB full-chip; ratio matters, not absolutes).
    EXPECT_GT(full_bits.bytes, page_bits.bytes * 5);
}

TEST(Engine, BitstreamDeterministic)
{
    auto nl = compiled("k3", 8, true);
    Bitstream a = generateBitstream(nl, device().pages[0].rect);
    Bitstream b = generateBitstream(nl, device().pages[0].rect);
    EXPECT_EQ(a.hash, b.hash);
    EXPECT_EQ(a.bytes, b.bytes);
}

TEST(Engine, AbstractShellIsFaster)
{
    auto nl = compiled("k4", 8, true);
    PnrOptions with_shell;
    with_shell.effort = 0.2;
    with_shell.abstractShell = true;
    PnrOptions no_shell = with_shell;
    no_shell.abstractShell = false;

    PnrResult a =
        placeAndRoute(nl, device(), device().pages[0].rect, with_shell);
    PnrResult b =
        placeAndRoute(nl, device(), device().pages[0].rect, no_shell);
    EXPECT_EQ(a.contextSeconds, 0.0);
    EXPECT_GT(b.contextSeconds, 0.0)
        << "no abstract shell -> full context load (Sec 4.1)";
}

TEST(Engine, PageCompileFasterThanMonolithicRegion)
{
    // The headline mechanism: one operator into one page is much
    // cheaper than several operators into the whole user area.
    auto small = compiled("k5", 8, true);
    PnrOptions opts;
    opts.effort = 0.3;
    PnrResult page_res =
        placeAndRoute(small, device(), device().pages[0].rect, opts);

    netlist::Netlist big = compiled("k6", 8, false);
    for (int i = 0; i < 7; ++i)
        big.merge(compiled("k7_" + std::to_string(i), 8, false),
                  "m" + std::to_string(i) + "_");
    Rect user{0, 0, 120, 576};
    PnrResult mono_res = placeAndRoute(big, device(), user, opts);

    // Compare deterministic algorithmic work, not wall-clock (which
    // flakes under load): the monolithic run must attempt
    // super-linearly more annealing moves.
    EXPECT_GT(mono_res.place.pos.size(),
              page_res.place.pos.size() * 4);
    EXPECT_GT(mono_res.placeSeconds + mono_res.routeSeconds +
                  mono_res.contextSeconds,
              page_res.placeSeconds)
        << "monolithic p&r must cost more than one page compile";
}

TEST(Engine, TimingPenalizesUnpipelinedSlrCrossing)
{
    // Two cells forced on opposite SLRs.
    netlist::Netlist nl;
    int a = nl.addCell({netlist::SiteKind::Clb, "a", 4, 4, 2, 0, {}});
    int b = nl.addCell({netlist::SiteKind::Clb, "b", 4, 4, 2, 0, {}});
    int w = nl.addNet("cross", 32, a);
    nl.addSink(w, b);

    Placement p;
    p.pos = {{3, 10}, {3, 570}}; // SLR0 -> SLR1

    TimingResult plain = analyzeTiming(nl, device(), p);
    nl.nets[0].pipelined = true;
    TimingResult piped = analyzeTiming(nl, device(), p);
    EXPECT_GT(piped.fmaxMHz, plain.fmaxMHz);
    EXPECT_TRUE(plain.critCrossesSlr);
    EXPECT_FALSE(piped.critCrossesSlr);
}

TEST(Engine, InfeasibleRouteIsStructuredAndRetriable)
{
    // A failed route must be impossible to ignore: success goes
    // false and an Error-severity RouteInfeasible diagnostic is
    // attached, marked retriable so the compile manager knows the
    // ladder may help.
    auto nl = compiled("k9", 8, true);
    PnrOptions opts;
    opts.effort = 0.2;
    opts.injectRouteFail = true;
    PnrResult res =
        placeAndRoute(nl, device(), device().pages[0].rect, opts);
    EXPECT_FALSE(res.success);
    EXPECT_FALSE(res.routing.feasible);
    EXPECT_GE(res.routing.overusedTiles, 1);
    EXPECT_FALSE(res.status.ok());
    EXPECT_EQ(res.status.firstError(),
              CompileCode::RouteInfeasible);
    ASSERT_FALSE(res.status.diags.empty());
    EXPECT_TRUE(res.status.diags[0].retriable);
}

TEST(Engine, FmaxBelowRequiredClockIsTimingMiss)
{
    auto nl = compiled("k10", 8, true);
    PnrOptions opts;
    opts.effort = 0.2;
    opts.requiredFmaxMHz = 200.0;
    opts.injectFmaxDerate = 0.4;
    PnrResult res =
        placeAndRoute(nl, device(), device().pages[0].rect, opts);
    EXPECT_FALSE(res.timingMet);
    EXPECT_FALSE(res.success)
        << "a timing miss must fail the run, not just warn";
    EXPECT_LT(res.timing.fmaxMHz, 200.0);
    EXPECT_EQ(res.status.firstError(), CompileCode::TimingMiss);

    // Without a required clock the same derated run is a success:
    // only paged overlay compiles demand the 200 MHz closure.
    opts.requiredFmaxMHz = 0;
    PnrResult free_run =
        placeAndRoute(nl, device(), device().pages[0].rect, opts);
    EXPECT_TRUE(free_run.success);
    EXPECT_TRUE(free_run.status.ok());
}

TEST(Engine, StageTimesAccounted)
{
    auto nl = compiled("k8", 8, true);
    PnrOptions opts;
    opts.effort = 0.2;
    PnrResult res =
        placeAndRoute(nl, device(), device().pages[3].rect, opts);
    EXPECT_GT(res.placeSeconds, 0.0);
    EXPECT_GT(res.routeSeconds, 0.0);
    EXPECT_GE(res.totalSeconds, res.placeSeconds + res.routeSeconds);
}
