#include <gtest/gtest.h>

#include "fabric/device.h"
#include "pnr/router.h"

using namespace pld;
using namespace pld::pnr;
using fabric::Device;
using fabric::makeU50;
using netlist::Netlist;
using netlist::SiteKind;

namespace {

const Device &
device()
{
    static Device d = makeU50();
    return d;
}

} // namespace

TEST(Router, RoutesSimpleNet)
{
    Netlist nl;
    int a = nl.addCell({SiteKind::Clb, "a", 4, 4, 1, 0, {}});
    int b = nl.addCell({SiteKind::Clb, "b", 4, 4, 1, 0, {}});
    int w = nl.addNet("w", 32, a);
    nl.addSink(w, b);

    Placement p;
    p.pos = {{2, 2}, {10, 8}};
    RouteResult rr = route(nl, device(), p, {});
    EXPECT_TRUE(rr.feasible);
    // Manhattan distance 8+6 = 14 tiles, width 32 -> 4 units each.
    EXPECT_EQ(rr.totalWirelength, 14 * 4);
}

TEST(Router, ZeroLengthNetIsFree)
{
    Netlist nl;
    int a = nl.addCell({SiteKind::Clb, "a", 4, 4, 1, 0, {}});
    int b = nl.addCell({SiteKind::Dsp, "b", 0, 0, 1, 0, {}});
    int w = nl.addNet("w", 32, a);
    nl.addSink(w, b);
    Placement p;
    p.pos = {{5, 5}, {5, 5}}; // same tile (different site kinds)
    RouteResult rr = route(nl, device(), p, {});
    EXPECT_TRUE(rr.feasible);
    EXPECT_EQ(rr.totalWirelength, 0);
}

TEST(Router, CongestionForcesIterationsOrOveruse)
{
    // Funnel many wide nets through the same corridor with tiny
    // capacity: router must iterate, and utilization approaches 1.
    Netlist nl;
    const int k = 24;
    Placement p;
    for (int i = 0; i < k; ++i) {
        int a = nl.addCell(
            {SiteKind::Clb, "s" + std::to_string(i), 1, 1, 1, 0, {}});
        int b = nl.addCell(
            {SiteKind::Clb, "t" + std::to_string(i), 1, 1, 1, 0, {}});
        int w = nl.addNet("w" + std::to_string(i), 32, a);
        nl.addSink(w, b);
        p.pos.push_back({0, i});
        p.pos.push_back({30, i});
    }
    RouterOptions opts;
    opts.channelCapacity = 8;
    RouteResult rr = route(nl, device(), p, opts);
    EXPECT_GT(rr.maxUtilization, 0.4);
    EXPECT_GE(rr.iterations, 1);
}

TEST(Router, HighCapacityAvoidsOveruse)
{
    Netlist nl;
    Placement p;
    for (int i = 0; i < 16; ++i) {
        int a = nl.addCell(
            {SiteKind::Clb, "s" + std::to_string(i), 1, 1, 1, 0, {}});
        int b = nl.addCell(
            {SiteKind::Clb, "t" + std::to_string(i), 1, 1, 1, 0, {}});
        int w = nl.addNet("w" + std::to_string(i), 32, a);
        nl.addSink(w, b);
        p.pos.push_back({i, 0});
        p.pos.push_back({i, 40});
    }
    RouterOptions opts;
    opts.channelCapacity = 256;
    RouteResult rr = route(nl, device(), p, opts);
    EXPECT_TRUE(rr.feasible);
    EXPECT_EQ(rr.iterations, 1);
}

TEST(Router, WideBusesUseMoreWirelength)
{
    auto run_width = [&](int width) {
        Netlist nl;
        int a = nl.addCell({SiteKind::Clb, "a", 1, 1, 1, 0, {}});
        int b = nl.addCell({SiteKind::Clb, "b", 1, 1, 1, 0, {}});
        int w = nl.addNet("w", width, a);
        nl.addSink(w, b);
        Placement p;
        p.pos = {{0, 0}, {10, 0}};
        return route(nl, device(), p, {}).totalWirelength;
    };
    EXPECT_GT(run_width(64), run_width(8));
}
