/**
 * Determinism of the parallel place-and-route engine: thread counts
 * and restart scheduling must never change results — only wall time.
 * Each case runs the same seed at threads=1 and threads=8 and demands
 * bit-identical outputs, for both a page-sized netlist and a
 * monolithic (full user region) netlist.
 */

#include <gtest/gtest.h>

#include "fabric/device.h"
#include "hls/compiler.h"
#include "hls/synthesis.h"
#include "ir/builder.h"
#include "pnr/engine.h"

using namespace pld;
using namespace pld::ir;
using namespace pld::pnr;
using fabric::Device;
using fabric::makeU50;
using fabric::Rect;
using netlist::Netlist;
using netlist::SiteKind;

namespace {

const Device &
device()
{
    static Device d = makeU50();
    return d;
}

Netlist
makeChain(int n)
{
    Netlist nl;
    int prev = -1;
    for (int i = 0; i < n; ++i) {
        int c = nl.addCell(
            {SiteKind::Clb, "x" + std::to_string(i), 6, 10, 1, 0, {}});
        if (prev >= 0) {
            int w = nl.addNet("w" + std::to_string(i), 32, prev);
            nl.addSink(w, c);
        }
        prev = c;
    }
    return nl;
}

OperatorFn
makeKernel(const std::string &name, int taps)
{
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    auto w = b.array("w", Type::fx(16, 8), taps);
    auto acc = b.var("acc", Type::fx(32, 17));
    b.forLoop(0, taps, [&](Ex i) {
        b.store(w, i, b.read(in).bitcast(Type::fx(16, 8)));
    });
    b.forLoop(0, 256, [&](Ex i) {
        Ex x = b.read(in).bitcast(Type::fx(32, 17));
        b.set(acc, Ex(acc) + x * w[i % lit(taps)]);
        b.write(out, acc);
    });
    return b.finish();
}

Netlist
hlsNetlist(const std::string &name, bool leaf)
{
    auto r = hls::compileOperator(makeKernel(name, 8), leaf);
    hls::synthesize(r.net);
    return std::move(r.net);
}

const Rect kUserRegion{0, 0, 120, 576};

} // namespace

TEST(Parallel, PlacerIdenticalAcrossThreadCounts)
{
    Netlist nl = makeChain(120);
    PlacerOptions base;
    base.effort = 0.2;
    base.seed = 7;
    base.restarts = 4;

    PlacerOptions serial = base;
    serial.threads = 1;
    PlacerOptions wide = base;
    wide.threads = 8;

    PlaceResult a = place(nl, device(), device().pages[0].rect, serial);
    PlaceResult b = place(nl, device(), device().pages[0].rect, wide);
    EXPECT_EQ(a.place.pos, b.place.pos);
    EXPECT_EQ(a.finalCost, b.finalCost);
    EXPECT_EQ(a.movesAttempted, b.movesAttempted);
    EXPECT_EQ(a.restartsRun, b.restartsRun);
}

TEST(Parallel, RouterIdenticalAcrossThreadCounts)
{
    // Congested enough to force several negotiation iterations.
    Netlist nl = makeChain(200);
    PlacerOptions popts;
    popts.effort = 0.2;
    PlaceResult pr = place(nl, device(), device().pages[0].rect, popts);

    RouterOptions serial;
    serial.channelCapacity = 16;
    serial.threads = 1;
    RouterOptions wide = serial;
    wide.threads = 8;

    RouteResult a = route(nl, device(), pr.place, serial);
    RouteResult b = route(nl, device(), pr.place, wide);
    EXPECT_EQ(a.routes, b.routes) << "per-net paths must match";
    EXPECT_EQ(a.totalWirelength, b.totalWirelength);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.overusedTiles, b.overusedTiles);
    EXPECT_EQ(a.maxUtilization, b.maxUtilization);
    EXPECT_GE(b.threadsUsed, 2u);
}

TEST(Parallel, PageEngineIdenticalAcrossThreadCounts)
{
    Netlist nl = hlsNetlist("pp1", true);
    PnrOptions base;
    base.effort = 0.2;
    base.seed = 3;
    base.placeRestarts = 3;

    PnrOptions serial = base;
    serial.threads = 1;
    PnrOptions wide = base;
    wide.threads = 8;

    PnrResult a =
        placeAndRoute(nl, device(), device().pages[0].rect, serial);
    PnrResult b =
        placeAndRoute(nl, device(), device().pages[0].rect, wide);
    EXPECT_EQ(a.place.pos, b.place.pos);
    EXPECT_EQ(a.routing.routes, b.routing.routes);
    EXPECT_EQ(a.routing.totalWirelength, b.routing.totalWirelength);
    EXPECT_EQ(a.bits.hash, b.bits.hash);
    EXPECT_EQ(a.timing.fmaxMHz, b.timing.fmaxMHz);
    EXPECT_EQ(a.placeMoves, b.placeMoves);
}

TEST(Parallel, MonolithicEngineIdenticalAcrossThreadCounts)
{
    // Several operators merged into one netlist, placed into the
    // whole user region — the -O3/Vitis shape.
    Netlist big = hlsNetlist("pm0", false);
    for (int i = 1; i < 4; ++i)
        big.merge(hlsNetlist("pm" + std::to_string(i), false),
                  "m" + std::to_string(i) + "_");

    PnrOptions base;
    base.effort = 0.15;
    base.seed = 11;
    base.placeRestarts = 2;

    PnrOptions serial = base;
    serial.threads = 1;
    PnrOptions wide = base;
    wide.threads = 8;

    PnrResult a = placeAndRoute(big, device(), kUserRegion, serial);
    PnrResult b = placeAndRoute(big, device(), kUserRegion, wide);
    EXPECT_EQ(a.place.pos, b.place.pos);
    EXPECT_EQ(a.routing.routes, b.routing.routes);
    EXPECT_EQ(a.routing.totalWirelength, b.routing.totalWirelength);
    EXPECT_EQ(a.bits.hash, b.bits.hash);
    EXPECT_EQ(a.timing.fmaxMHz, b.timing.fmaxMHz);
}

TEST(Parallel, CpuTimeCoversWallTime)
{
    Netlist nl = hlsNetlist("pt1", true);
    PnrOptions opts;
    opts.effort = 0.2;
    opts.threads = 2;
    opts.placeRestarts = 2;
    // placeCpuSeconds must sum EVERY restart thread's busy time.
    // Comparing against wall time is load-sensitive (preemption
    // under a parallel ctest run stretches wall while busy time
    // stands still), so compare busy against busy: a serial run
    // does the identical restarts on one thread, and losing a
    // thread's accounting would halve the parallel sum.
    PnrOptions serial = opts;
    serial.threads = 1;
    PnrResult s =
        placeAndRoute(nl, device(), device().pages[0].rect, serial);
    PnrResult r =
        placeAndRoute(nl, device(), device().pages[0].rect, opts);
    EXPECT_GT(s.placeCpuSeconds, 0.0);
    EXPECT_GT(r.placeCpuSeconds, 0.0);
    EXPECT_GT(r.routeCpuSeconds, 0.0);
    EXPECT_GE(r.placeCpuSeconds, s.placeCpuSeconds * 0.6);
}
