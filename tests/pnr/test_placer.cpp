#include <gtest/gtest.h>

#include "fabric/device.h"
#include "pnr/placer.h"

using namespace pld;
using namespace pld::pnr;
using fabric::Device;
using fabric::makeU50;
using fabric::Rect;
using netlist::Cell;
using netlist::Netlist;
using netlist::SiteKind;

namespace {

const Device &
device()
{
    static Device d = makeU50();
    return d;
}

/** A chain of CLB cells: x0 -> x1 -> ... -> x(n-1). */
Netlist
makeChain(int n)
{
    Netlist nl;
    int prev = -1;
    for (int i = 0; i < n; ++i) {
        int c = nl.addCell(
            {SiteKind::Clb, "x" + std::to_string(i), 6, 10, 1, 0, {}});
        if (prev >= 0) {
            int w = nl.addNet("w" + std::to_string(i), 32, prev);
            nl.addSink(w, c);
        }
        prev = c;
    }
    return nl;
}

} // namespace

TEST(Placer, LegalAndComplete)
{
    Netlist nl = makeChain(50);
    PlacerOptions opts;
    opts.effort = 0.3;
    PlaceResult pr = place(nl, device(), device().pages[0].rect, opts);
    ASSERT_EQ(pr.place.pos.size(), nl.cells.size());

    // All positions inside the page, on CLB tiles, no overlaps.
    const Rect &page = device().pages[0].rect;
    std::set<std::pair<int, int>> used;
    for (auto [c, r] : pr.place.pos) {
        EXPECT_TRUE(page.contains(c, r));
        EXPECT_EQ(device().at(c, r), fabric::TileKind::Clb);
        EXPECT_TRUE(used.insert({c, r}).second) << "overlap";
    }
}

TEST(Placer, AnnealingImprovesCost)
{
    Netlist nl = makeChain(200);
    PlacerOptions opts;
    opts.effort = 0.5;
    PlaceResult pr = place(nl, device(), device().pages[0].rect, opts);
    EXPECT_LT(pr.finalCost, pr.initialCost * 0.8)
        << "SA should shorten a long chain substantially";
    EXPECT_GT(pr.movesAccepted, 0u);
}

TEST(Placer, DeterministicForSeed)
{
    Netlist nl = makeChain(60);
    PlacerOptions opts;
    opts.effort = 0.2;
    opts.seed = 99;
    PlaceResult a = place(nl, device(), device().pages[1].rect, opts);
    PlaceResult b = place(nl, device(), device().pages[1].rect, opts);
    EXPECT_EQ(a.place.pos, b.place.pos);
    EXPECT_EQ(a.finalCost, b.finalCost);
}

TEST(Placer, MixedSiteKinds)
{
    Netlist nl = makeChain(20);
    int d = nl.addCell({SiteKind::Dsp, "mul", 0, 0, 3, 0, {}});
    int b = nl.addCell({SiteKind::Bram, "mem", 0, 0, 2, 0, {}});
    int w1 = nl.addNet("wd", 32, 5);
    nl.addSink(w1, d);
    int w2 = nl.addNet("wb", 18, d);
    nl.addSink(w2, b);

    PlacerOptions opts;
    opts.effort = 0.2;
    PlaceResult pr = place(nl, device(), device().pages[2].rect, opts);
    auto [dc, dr] = pr.place.pos[d];
    auto [bc, br] = pr.place.pos[b];
    EXPECT_EQ(device().at(dc, dr), fabric::TileKind::Dsp);
    EXPECT_EQ(device().at(bc, br), fabric::TileKind::Bram);
}

TEST(Placer, OverCapacityIsFatal)
{
    // More BRAM cells than one page offers must die with a clear
    // message (fatal() exits with code 1).
    Netlist nl;
    int64_t too_many = device().pages[0].res.bram18 + 8;
    for (int i = 0; i < too_many; ++i)
        nl.addCell({SiteKind::Bram, "m" + std::to_string(i), 0, 0, 1,
                    0, {}});
    PlacerOptions opts;
    EXPECT_EXIT(place(nl, device(), device().pages[0].rect, opts),
                testing::ExitedWithCode(1), "decompose the operator");
}

TEST(Placer, SmallRegionCostsLessEffortThanLarge)
{
    // The compile-time claim in microcosm: placing the same netlist
    // into a page attempts far fewer super-linear moves than placing
    // a 10x bigger netlist into the full user region.
    Netlist small = makeChain(100);
    PlacerOptions opts;
    opts.effort = 0.3;
    PlaceResult pr_small =
        place(small, device(), device().pages[0].rect, opts);

    Netlist big = makeChain(1000);
    Rect user{0, 0, 120, 576};
    PlaceResult pr_big = place(big, device(), user, opts);

    EXPECT_GT(pr_big.movesAttempted, pr_small.movesAttempted * 5);
}

TEST(Placer, CostFunctionMatchesStandalone)
{
    Netlist nl = makeChain(30);
    PlacerOptions opts;
    opts.effort = 0.2;
    PlaceResult pr = place(nl, device(), device().pages[0].rect, opts);
    double standalone =
        placementCost(nl, device(), pr.place, opts.slrPenalty);
    EXPECT_NEAR(pr.finalCost, standalone, 1e-6 + standalone * 1e-9);
}
