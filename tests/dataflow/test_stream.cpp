#include <gtest/gtest.h>

#include "dataflow/stream.h"

using namespace pld::dataflow;

TEST(WordFifo, UnboundedPushPop)
{
    WordFifo f;
    for (uint32_t i = 0; i < 1000; ++i)
        f.push(i);
    EXPECT_EQ(f.size(), 1000u);
    for (uint32_t i = 0; i < 1000; ++i)
        EXPECT_EQ(f.pop(), i);
    EXPECT_FALSE(f.canPop());
}

TEST(WordFifo, BoundedCapacity)
{
    WordFifo f(2);
    EXPECT_TRUE(f.canPush());
    f.push(1);
    f.push(2);
    EXPECT_FALSE(f.canPush());
    f.pop();
    EXPECT_TRUE(f.canPush());
}

TEST(WordFifo, StatsTrackActivity)
{
    WordFifo f(8);
    f.push(1);
    f.push(2);
    f.push(3);
    f.pop();
    const auto &st = f.stats();
    EXPECT_EQ(st.pushes, 3u);
    EXPECT_EQ(st.pops, 1u);
    EXPECT_EQ(st.maxOccupancy, 3u);
}

TEST(WordFifo, FrontDoesNotConsume)
{
    WordFifo f;
    f.push(42);
    EXPECT_EQ(f.front(), 42u);
    EXPECT_EQ(f.size(), 1u);
    EXPECT_EQ(f.pop(), 42u);
}

TEST(Ports, ReadWriteDirections)
{
    WordFifo f(4);
    FifoReadPort rp(f);
    FifoWritePort wp(f);
    EXPECT_FALSE(rp.canRead());
    EXPECT_TRUE(wp.canWrite());
    wp.write(7);
    EXPECT_TRUE(rp.canRead());
    EXPECT_EQ(rp.read(), 7u);
    EXPECT_FALSE(rp.canWrite());
    EXPECT_FALSE(wp.canRead());
}

TEST(Ports, BackpressureVisible)
{
    WordFifo f(1);
    FifoWritePort wp(f);
    wp.write(1);
    EXPECT_FALSE(wp.canWrite());
}
