#include <gtest/gtest.h>

#include "dataflow/runtime.h"
#include "ir/builder.h"

using namespace pld;
using namespace pld::ir;
using dataflow::GraphRuntime;

namespace {

OperatorFn
makeAddK(const std::string &name, int k, int n)
{
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, n, [&](Ex) {
        b.write(out, b.read(in).bitcast(Type::s(32)) + k);
    });
    return b.finish();
}

OperatorFn
makeSplit(int n)
{
    OpBuilder b("split");
    auto in = b.input("in");
    auto a = b.output("a");
    auto o = b.output("b");
    auto x = b.var("x", Type::s(32));
    b.forLoop(0, n, [&](Ex) {
        // Read into a variable: reusing the read expression itself
        // would re-execute it per use (and the validator rejects it).
        b.set(x, b.read(in).bitcast(Type::s(32)));
        b.write(a, x);
        b.write(o, x);
    });
    return b.finish();
}

OperatorFn
makeJoinSum(int n)
{
    OpBuilder b("join");
    auto a = b.input("a");
    auto c = b.input("b");
    auto out = b.output("out");
    auto x = b.var("x", Type::s(32));
    b.forLoop(0, n, [&](Ex) {
        b.set(x, b.read(a).bitcast(Type::s(32)));
        b.write(out, Ex(x) + b.read(c).bitcast(Type::s(32)));
    });
    return b.finish();
}

} // namespace

TEST(GraphRuntime, LinearPipeline)
{
    const int n = 16;
    GraphBuilder gb("pipe");
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto w1 = gb.wire();
    auto w2 = gb.wire();
    gb.inst(makeAddK("a1", 1, n), {in}, {w1});
    gb.inst(makeAddK("a2", 10, n), {w1}, {w2});
    gb.inst(makeAddK("a3", 100, n), {w2}, {out});
    Graph g = gb.finish();

    GraphRuntime rt(g);
    std::vector<uint32_t> inputs;
    for (int i = 0; i < n; ++i)
        inputs.push_back(static_cast<uint32_t>(i));
    rt.pushInput(0, inputs);
    ASSERT_TRUE(rt.run());
    auto outw = rt.takeOutput(0);
    ASSERT_EQ(outw.size(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(outw[i], static_cast<uint32_t>(i + 111));
}

TEST(GraphRuntime, ForkJoinDiamond)
{
    const int n = 8;
    GraphBuilder gb("diamond");
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto wa = gb.wire(), wb = gb.wire(), wc = gb.wire(),
         wd = gb.wire();
    gb.inst(makeSplit(n), {in}, {wa, wb});
    gb.inst(makeAddK("l", 1, n), {wa}, {wc});
    gb.inst(makeAddK("r", 2, n), {wb}, {wd});
    gb.inst(makeJoinSum(n), {wc, wd}, {out});
    Graph g = gb.finish();

    GraphRuntime rt(g);
    std::vector<uint32_t> inputs;
    for (int i = 0; i < n; ++i)
        inputs.push_back(static_cast<uint32_t>(i));
    rt.pushInput(0, inputs);
    ASSERT_TRUE(rt.run());
    auto outw = rt.takeOutput(0);
    ASSERT_EQ(outw.size(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(outw[i], static_cast<uint32_t>(2 * i + 3));
}

TEST(GraphRuntime, BoundedFifosStillComplete)
{
    const int n = 64;
    GraphBuilder gb("tight");
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto w1 = gb.wire();
    gb.inst(makeAddK("a", 1, n), {in}, {w1});
    gb.inst(makeAddK("b", 1, n), {w1}, {out});
    Graph g = gb.finish();

    // Tiny internal FIFO capacity forces backpressure cycles between
    // the two stages; external DMA links stay unbounded.
    GraphRuntime rt(g, 1);
    std::vector<uint32_t> inputs(n, 1);
    rt.pushInput(0, inputs);
    ASSERT_TRUE(rt.run());
    auto outw = rt.takeOutput(0);
    ASSERT_EQ(outw.size(), static_cast<size_t>(n));
    for (uint32_t w : outw)
        EXPECT_EQ(w, 3u);
}

TEST(GraphRuntime, DeadlockDetected)
{
    // join needs both inputs, but only one is ever fed.
    const int n = 4;
    GraphBuilder gb("starved");
    auto inA = gb.extIn("A");
    auto inB = gb.extIn("B");
    auto out = gb.extOut("O");
    gb.inst(makeJoinSum(n), {inA, inB}, {out});
    Graph g = gb.finish();

    GraphRuntime rt(g);
    rt.pushInput(0, {1, 2, 3, 4});
    // Input B never fed: the join starves.
    EXPECT_FALSE(rt.run());
    EXPECT_NE(rt.deadlockReport().find("join"), std::string::npos);
}

TEST(GraphRuntime, StatsAggregate)
{
    const int n = 4;
    GraphBuilder gb("pipe");
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    gb.inst(makeAddK("a", 1, n), {in}, {out});
    Graph g = gb.finish();
    GraphRuntime rt(g);
    rt.pushInput(0, {1, 2, 3, 4});
    ASSERT_TRUE(rt.run());
    EXPECT_GT(rt.totalStatements(), 0u);
    EXPECT_EQ(rt.exec(0).stats().streamReads, 4u);
}
