/**
 * Parameterized property sweeps over scalar type widths: algebraic
 * laws every target must satisfy (cast round-trips, bitcast
 * identity, wrap consistency), checked on the interpreter across the
 * whole supported width range.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataflow/stream.h"
#include "interp/exec.h"
#include "ir/builder.h"

using namespace pld;
using namespace pld::ir;

namespace {

/** Run a 1-in/1-out kernel over inputs. */
std::vector<uint32_t>
run(const OperatorFn &fn, const std::vector<uint32_t> &inputs)
{
    dataflow::WordFifo fin, fout;
    dataflow::FifoReadPort ip(fin);
    dataflow::FifoWritePort op(fout);
    interp::OperatorExec exec(fn, {&ip, &op});
    for (uint32_t w : inputs)
        fin.push(w);
    EXPECT_EQ(exec.run(), interp::RunStatus::Done);
    std::vector<uint32_t> out;
    while (fout.canPop())
        out.push_back(fout.pop());
    return out;
}

std::vector<uint32_t>
randomWords(int n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint32_t> w;
    for (int i = 0; i < n; ++i)
        w.push_back(static_cast<uint32_t>(rng.next()));
    return w;
}

class WidthSweep : public ::testing::TestWithParam<int>
{
};

} // namespace

TEST_P(WidthSweep, CastUpThenDownIsIdentityOnNarrowValues)
{
    int w = GetParam();
    OpBuilder b("roundtrip");
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, 16, [&](Ex) {
        Ex x = b.read(in).bitcast(Type::s(w));
        // widen to s32, then back: must be lossless.
        b.write(out, x.cast(Type::s(32)).cast(Type::s(w))
                         .cast(Type::s(32)));
    });
    auto inputs = randomWords(16, 1000 + w);
    auto got = run(b.finish(), inputs);

    OpBuilder b2("direct");
    auto in2 = b2.input("in");
    auto out2 = b2.output("out");
    b2.forLoop(0, 16, [&](Ex) {
        b2.write(out2,
                 b2.read(in2).bitcast(Type::s(w)).cast(Type::s(32)));
    });
    auto want = run(b2.finish(), inputs);
    EXPECT_EQ(got, want) << "width " << w;
}

TEST_P(WidthSweep, BitcastIsRawIdentityWithinWidth)
{
    int w = GetParam();
    OpBuilder b("bits");
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, 16, [&](Ex) {
        // u(w) <-> s(w) bitcasts preserve the low w bits exactly.
        Ex x = b.read(in).bitcast(Type::u(w));
        b.write(out, x.bitcast(Type::s(w)).bitcast(Type::u(w)));
    });
    auto inputs = randomWords(16, 2000 + w);
    auto got = run(b.finish(), inputs);
    uint32_t mask = w >= 32 ? 0xFFFFFFFFu : ((1u << w) - 1);
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], inputs[i] & mask) << "width " << w;
}

TEST_P(WidthSweep, AddSubCancelOnFixedGrid)
{
    int w = GetParam();
    if (w < 4)
        GTEST_SKIP() << "fixed format needs a few bits";
    Type fx = Type::fx(w, w / 2);
    OpBuilder b("cancel");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", fx);
    Ex k = litF(1.0, fx);
    b.forLoop(0, 16, [&](Ex) {
        b.set(x, b.read(in).bitcast(fx));
        // (x + k) - k == x exactly (no quantization: same grid, and
        // the intermediate is wider).
        b.write(out, ((Ex(x) + k) - k).cast(fx));
    });
    auto inputs = randomWords(16, 3000 + w);
    auto got = run(b.finish(), inputs);
    uint32_t mask = w >= 32 ? 0xFFFFFFFFu : ((1u << w) - 1);
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i] & mask, inputs[i] & mask) << "width " << w;
}

TEST_P(WidthSweep, NegNegIsIdentity)
{
    int w = GetParam();
    OpBuilder b("negneg");
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, 16, [&](Ex) {
        Ex x = b.read(in).bitcast(Type::s(w));
        b.write(out, (-(-x)).cast(Type::s(w)).bitcast(Type::u(w)));
    });
    auto inputs = randomWords(16, 4000 + w);
    auto got = run(b.finish(), inputs);
    uint32_t mask = w >= 32 ? 0xFFFFFFFFu : ((1u << w) - 1);
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], inputs[i] & mask) << "width " << w;
}

INSTANTIATE_TEST_SUITE_P(AllWidths, WidthSweep,
                         ::testing::Values(1, 2, 4, 5, 7, 8, 12, 16,
                                           17, 24, 31, 32));
