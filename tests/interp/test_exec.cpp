#include <gtest/gtest.h>

#include "dataflow/stream.h"
#include "interp/exec.h"
#include "ir/builder.h"

using namespace pld;
using namespace pld::ir;
using interp::OperatorExec;
using interp::RunStatus;

namespace {

/** Harness wiring one operator to input/output FIFOs. */
struct Rig
{
    explicit Rig(const OperatorFn &fn, size_t cap = 0)
        : fn(fn), inFifo(cap), outFifo(cap), inPort(inFifo),
          outPort(outFifo)
    {
        std::vector<dataflow::StreamPort *> ports;
        for (const auto &p : fn.ports) {
            ports.push_back(p.dir == PortDir::In
                                ? static_cast<dataflow::StreamPort *>(
                                      &inPort)
                                : &outPort);
        }
        // Note: pass the member copy, not the parameter — OperatorExec
        // keeps a reference to the operator for its whole lifetime.
        exec = std::make_unique<OperatorExec>(this->fn, ports);
    }

    std::vector<uint32_t>
    drain()
    {
        std::vector<uint32_t> out;
        while (outFifo.canPop())
            out.push_back(outFifo.pop());
        return out;
    }

    OperatorFn fn;
    dataflow::WordFifo inFifo, outFifo;
    dataflow::FifoReadPort inPort;
    dataflow::FifoWritePort outPort;
    std::unique_ptr<OperatorExec> exec;
};

OperatorFn
makeDoubler(int n)
{
    OpBuilder b("doubler");
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, n, [&](Ex) {
        Ex x = b.read(in).bitcast(Type::s(32));
        b.write(out, x * 2);
    });
    return b.finish();
}

} // namespace

TEST(Exec, DoublerDoubles)
{
    Rig rig(makeDoubler(4));
    for (uint32_t v : {1u, 2u, 3u, 4u})
        rig.inFifo.push(v);
    EXPECT_EQ(rig.exec->run(), RunStatus::Done);
    EXPECT_TRUE(rig.exec->done());
    EXPECT_EQ(rig.drain(), (std::vector<uint32_t>{2, 4, 6, 8}));
}

TEST(Exec, BlocksOnEmptyInputThenResumes)
{
    Rig rig(makeDoubler(2));
    EXPECT_EQ(rig.exec->run(), RunStatus::BlockedOnRead);
    EXPECT_FALSE(rig.exec->done());
    rig.inFifo.push(10);
    EXPECT_EQ(rig.exec->run(), RunStatus::BlockedOnRead);
    rig.inFifo.push(20);
    EXPECT_EQ(rig.exec->run(), RunStatus::Done);
    EXPECT_EQ(rig.drain(), (std::vector<uint32_t>{20, 40}));
}

TEST(Exec, BlocksOnFullOutput)
{
    Rig rig(makeDoubler(3), 1); // capacity-1 FIFOs
    rig.inFifo.push(5);
    // Consumes 5, writes 10 (fits), then blocks reading input.
    EXPECT_EQ(rig.exec->run(), RunStatus::BlockedOnRead);
    rig.inFifo.push(6);
    // Output still holds 10, so the write of 12 backpressures.
    EXPECT_EQ(rig.exec->run(), RunStatus::BlockedOnWrite);
    EXPECT_EQ(rig.outFifo.pop(), 10u);
    EXPECT_EQ(rig.exec->run(), RunStatus::BlockedOnRead);
    EXPECT_EQ(rig.outFifo.pop(), 12u);
}

TEST(Exec, BudgetReturnsAndResumes)
{
    Rig rig(makeDoubler(100));
    for (uint32_t i = 0; i < 100; ++i)
        rig.inFifo.push(i);
    int slices = 0;
    while (rig.exec->run(10) == RunStatus::Budget)
        ++slices;
    EXPECT_TRUE(rig.exec->done());
    EXPECT_GT(slices, 2);
    EXPECT_EQ(rig.drain().size(), 100u);
}

TEST(Exec, StatsCountWork)
{
    Rig rig(makeDoubler(4));
    for (uint32_t i = 0; i < 4; ++i)
        rig.inFifo.push(i);
    rig.exec->run();
    const auto &st = rig.exec->stats();
    EXPECT_EQ(st.streamReads, 4u);
    EXPECT_EQ(st.streamWrites, 4u);
    EXPECT_GT(st.computeOps, 0u);
    EXPECT_GE(st.statements, 5u);
}

TEST(Exec, ResetRestoresInitialState)
{
    Rig rig(makeDoubler(2));
    rig.inFifo.push(1);
    rig.inFifo.push(2);
    rig.exec->run();
    EXPECT_TRUE(rig.exec->done());
    rig.exec->reset();
    EXPECT_FALSE(rig.exec->done());
    rig.inFifo.push(3);
    rig.inFifo.push(4);
    EXPECT_EQ(rig.exec->run(), RunStatus::Done);
    EXPECT_EQ(rig.drain(), (std::vector<uint32_t>{2, 4, 6, 8}));
}

TEST(Exec, RomAndArrayAccess)
{
    OpBuilder b("weighted");
    auto in = b.input("in");
    auto out = b.output("out");
    auto w = b.rom("w", Type::s(32), {2.0, 3.0, 5.0, 7.0});
    b.forLoop(0, 4, [&](Ex i) {
        Ex x = b.read(in).bitcast(Type::s(32));
        b.write(out, x * w[i]);
    });
    Rig rig(b.finish());
    for (uint32_t i = 1; i <= 4; ++i)
        rig.inFifo.push(i);
    rig.exec->run();
    EXPECT_EQ(rig.drain(), (std::vector<uint32_t>{2, 6, 15, 28}));
}

TEST(Exec, IfElseBranches)
{
    OpBuilder b("classify");
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, 4, [&](Ex) {
        Ex x = b.read(in).bitcast(Type::s(32));
        auto y = b.var("y" + std::to_string(0), Type::s(32));
        b.ifElse(
            x > 10, [&] { b.set(y, lit(1)); },
            [&] { b.set(y, lit(0)); });
        b.write(out, y);
    });
    Rig rig(b.finish());
    for (uint32_t v : {5u, 15u, 10u, 11u})
        rig.inFifo.push(v);
    rig.exec->run();
    EXPECT_EQ(rig.drain(), (std::vector<uint32_t>{0, 1, 0, 1}));
}

TEST(Exec, WhileLoopRuns)
{
    OpBuilder b("countdown");
    auto in = b.input("in");
    auto out = b.output("out");
    auto n = b.var("n", Type::s(32));
    auto steps = b.var("steps", Type::s(32));
    b.set(n, b.read(in).bitcast(Type::s(32)));
    b.set(steps, lit(0));
    b.whileLoop(Ex(n) > 0,
                [&] {
                    b.set(n, Ex(n) - 1);
                    b.set(steps, Ex(steps) + 1);
                },
                10);
    b.write(out, steps);
    Rig rig(b.finish());
    rig.inFifo.push(7);
    EXPECT_EQ(rig.exec->run(), RunStatus::Done);
    EXPECT_EQ(rig.drain(), (std::vector<uint32_t>{7}));
}

TEST(Exec, PrintCapturedWhenEnabled)
{
    OpBuilder b("printer");
    auto in = b.input("in");
    auto out = b.output("out");
    Ex x = b.read(in).bitcast(Type::s(32));
    b.print("got value");
    b.write(out, x);
    Rig rig(b.finish());
    rig.exec->setPrintsEnabled(true);
    rig.inFifo.push(9);
    rig.exec->run();
    ASSERT_EQ(rig.exec->printLog().size(), 1u);
    EXPECT_NE(rig.exec->printLog()[0].find("got value"),
              std::string::npos);
}

TEST(Exec, PrintSuppressedByDefault)
{
    OpBuilder b("quiet");
    auto in = b.input("in");
    auto out = b.output("out");
    b.print("secret");
    b.write(out, b.read(in));
    Rig rig(b.finish());
    rig.inFifo.push(1);
    rig.exec->run();
    EXPECT_TRUE(rig.exec->printLog().empty());
}

TEST(Exec, NestedLoopOrder)
{
    OpBuilder b("nest");
    auto out = b.output("out");
    b.forLoop(0, 3, [&](Ex r) {
        b.forLoop(0, 2, [&](Ex c) { b.write(out, r * 2 + c); });
    });
    Rig rig(b.finish());
    rig.exec->run();
    EXPECT_EQ(rig.drain(), (std::vector<uint32_t>{0, 1, 2, 3, 4, 5}));
}

TEST(Exec, EmptyLoopRangeSkips)
{
    OpBuilder b("empty");
    auto out = b.output("out");
    b.forLoop(5, 5, [&](Ex) { b.write(out, lit(1, Type::u(32))); });
    b.write(out, lit(42, Type::u(32)));
    Rig rig(b.finish());
    EXPECT_EQ(rig.exec->run(), RunStatus::Done);
    EXPECT_EQ(rig.drain(), (std::vector<uint32_t>{42}));
}
