#include <gtest/gtest.h>

#include <cmath>

#include "dataflow/stream.h"
#include "interp/exec.h"
#include "ir/builder.h"

using namespace pld;
using namespace pld::ir;
using interp::OperatorExec;
using interp::RunStatus;

namespace {

/**
 * Evaluate a unary IR function f(x) over a batch of raw 32-bit inputs
 * by building a 1-in/1-out operator and running it.
 */
std::vector<uint32_t>
evalKernel(const std::function<Ex(OpBuilder &, Ex)> &f,
           Type in_type, const std::vector<uint32_t> &inputs)
{
    OpBuilder b("k");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", in_type);
    b.forLoop(0, static_cast<int64_t>(inputs.size()), [&](Ex) {
        // Read into a variable so kernels may use x several times
        // without violating the one-read-per-statement discipline.
        b.set(x, b.read(in).bitcast(in_type));
        b.write(out, f(b, Ex(x)));
    });
    OperatorFn fn = b.finish();

    dataflow::WordFifo fin, fout;
    dataflow::FifoReadPort rp(fin);
    dataflow::FifoWritePort wp(fout);
    OperatorExec exec(fn, {&rp, &wp});
    for (uint32_t w : inputs)
        fin.push(w);
    EXPECT_EQ(exec.run(), RunStatus::Done);
    std::vector<uint32_t> outw;
    while (fout.canPop())
        outw.push_back(fout.pop());
    return outw;
}

constexpr Type kFx = Type::fx(32, 17); // the paper's ap_fixed<32,17>

uint32_t
rawOf(double v)
{
    return static_cast<uint32_t>(
        static_cast<int32_t>(std::floor(std::ldexp(v, 15))));
}

double
valOf(uint32_t raw)
{
    return std::ldexp(static_cast<double>(static_cast<int32_t>(raw)),
                      -15);
}

} // namespace

TEST(Semantics, FixedAddMatchesReal)
{
    std::vector<double> xs = {0.0, 1.5, -2.25, 100.125, -0.03125};
    std::vector<uint32_t> raw;
    for (double x : xs)
        raw.push_back(rawOf(x));
    auto out = evalKernel(
        [](OpBuilder &, Ex x) {
            return (x + litF(2.5, kFx)).cast(kFx);
        },
        kFx, raw);
    for (size_t i = 0; i < xs.size(); ++i)
        EXPECT_NEAR(valOf(out[i]), xs[i] + 2.5, 1e-4) << xs[i];
}

TEST(Semantics, FixedMulMatchesRealWithinGrid)
{
    std::vector<double> xs = {1.0, -1.5, 3.75, 0.5, -20.25};
    std::vector<uint32_t> raw;
    for (double x : xs)
        raw.push_back(rawOf(x));
    auto out = evalKernel(
        [](OpBuilder &, Ex x) {
            return (x * litF(-3.25, kFx)).cast(kFx);
        },
        kFx, raw);
    for (size_t i = 0; i < xs.size(); ++i)
        EXPECT_NEAR(valOf(out[i]), xs[i] * -3.25, 1.0 / 16384.0);
}

TEST(Semantics, FixedDivMatchesReal)
{
    std::vector<double> xs = {1.0, 10.0, -7.5, 0.25};
    std::vector<uint32_t> raw;
    for (double x : xs)
        raw.push_back(rawOf(x));
    auto out = evalKernel(
        [](OpBuilder &, Ex x) {
            return (x / litF(4.0, kFx)).cast(kFx);
        },
        kFx, raw);
    for (size_t i = 0; i < xs.size(); ++i)
        EXPECT_NEAR(valOf(out[i]), xs[i] / 4.0, 1e-4);
}

TEST(Semantics, DivByZeroYieldsZero)
{
    auto out = evalKernel(
        [](OpBuilder &, Ex x) {
            return (x / litF(0.0, kFx)).cast(kFx);
        },
        kFx, {rawOf(3.0)});
    EXPECT_EQ(out[0], 0u);
}

TEST(Semantics, WrapOnNarrowAssign)
{
    // Cast 300 into s8: wraps to 300-256 = 44.
    auto out = evalKernel(
        [](OpBuilder &, Ex x) {
            return x.cast(Type::s(8)).cast(Type::s(32));
        },
        Type::s(32), {300});
    EXPECT_EQ(static_cast<int32_t>(out[0]), 44);
}

TEST(Semantics, SignExtensionThroughBitcast)
{
    // 0xFFFFFFF0 bitcast to s32 is -16; +1 = -15.
    auto out = evalKernel(
        [](OpBuilder &, Ex x) { return (x + 1).cast(Type::s(32)); },
        Type::s(32), {0xFFFFFFF0u});
    EXPECT_EQ(static_cast<int32_t>(out[0]), -15);
}

TEST(Semantics, ShiftsPreserveScale)
{
    auto out = evalKernel(
        [](OpBuilder &, Ex x) { return (x << 2).cast(Type::s(32)); },
        Type::s(32), {5});
    EXPECT_EQ(out[0], 20u);
    auto out2 = evalKernel(
        [](OpBuilder &, Ex x) { return (x >> 1).cast(Type::s(32)); },
        Type::s(32), {static_cast<uint32_t>(-7)});
    EXPECT_EQ(static_cast<int32_t>(out2[0]), -4) << "arithmetic shift";
}

TEST(Semantics, ComparisonAcrossFormats)
{
    // Compare fx<32,17> against integer literal 2 (value compare).
    auto out = evalKernel(
        [](OpBuilder &, Ex x) { return (x > 2).cast(Type::u(32)); },
        kFx, {rawOf(1.5), rawOf(2.0), rawOf(2.5)});
    EXPECT_EQ(out[0], 0u);
    EXPECT_EQ(out[1], 0u);
    EXPECT_EQ(out[2], 1u);
}

TEST(Semantics, SelectPicksArm)
{
    auto out = evalKernel(
        [](OpBuilder &b, Ex x) {
            return b.select(x > 0, litF(1.0, kFx), litF(-1.0, kFx))
                .cast(kFx);
        },
        kFx, {rawOf(5.0), rawOf(-3.0), rawOf(0.0)});
    EXPECT_NEAR(valOf(out[0]), 1.0, 1e-6);
    EXPECT_NEAR(valOf(out[1]), -1.0, 1e-6);
    EXPECT_NEAR(valOf(out[2]), -1.0, 1e-6);
}

TEST(Semantics, ModuloInteger)
{
    auto out = evalKernel(
        [](OpBuilder &, Ex x) {
            return (x % lit(7)).cast(Type::s(32));
        },
        Type::s(32), {20, 7, 6});
    EXPECT_EQ(out[0], 6u);
    EXPECT_EQ(out[1], 0u);
    EXPECT_EQ(out[2], 6u);
}

TEST(Semantics, BitwiseOps)
{
    auto out = evalKernel(
        [](OpBuilder &, Ex x) {
            return ((x & lit(0xF0, Type::u(32))) |
                    lit(0x5, Type::u(32)))
                .cast(Type::u(32));
        },
        Type::u(32), {0xABCDu});
    EXPECT_EQ(out[0], 0xC5u);
}

TEST(Semantics, LogicalOps)
{
    auto out = evalKernel(
        [](OpBuilder &, Ex x) {
            Ex nz = x != 0;
            Ex small = x < 10;
            return (nz && small).cast(Type::u(32));
        },
        Type::s(32), {0, 5, 50});
    EXPECT_EQ(out[0], 0u);
    EXPECT_EQ(out[1], 1u);
    EXPECT_EQ(out[2], 0u);
}

TEST(Semantics, PaperFlowCalcBody)
{
    // The exact flow_calc arithmetic from Fig 2(d): given t[0..5],
    // compute numer0/denom with denom==0 guarded to 0.
    OpBuilder b("flow_calc");
    auto in = b.input("in");
    auto out = b.output("out");
    auto t = b.array("t", kFx, 6);
    auto buf0 = b.var("buf0", kFx);
    b.forLoop(0, 6, [&](Ex i) { b.store(t, i, b.readAs(in, kFx)); });
    Ex denom = (t[1] * t[2] - t[4] * t[4]).cast(kFx);
    Ex numer0 = (t[0] * t[4] - t[5] * t[2]).cast(kFx);
    b.ifElse(
        denom == 0, [&] { b.set(buf0, litF(0.0, kFx)); },
        [&] { b.set(buf0, numer0 / denom); });
    b.write(out, buf0);
    OperatorFn fn = b.finish();

    dataflow::WordFifo fin, fout;
    dataflow::FifoReadPort rp(fin);
    dataflow::FifoWritePort wp(fout);
    OperatorExec exec(fn, {&rp, &wp});
    double tv[6] = {1.0, 2.0, 3.0, 0.0, 1.5, -2.0};
    for (double v : tv)
        fin.push(rawOf(v));
    EXPECT_EQ(exec.run(), RunStatus::Done);
    double denom_d = tv[1] * tv[2] - tv[4] * tv[4];
    double numer0_d = tv[0] * tv[4] - tv[5] * tv[2];
    EXPECT_NEAR(valOf(fout.pop()), numer0_d / denom_d, 1e-3);
}
