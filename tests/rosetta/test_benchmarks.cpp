#include <gtest/gtest.h>

#include "dataflow/runtime.h"
#include "fabric/device.h"
#include "ir/validate.h"
#include "pld/compiler.h"
#include "rosetta/benchmark.h"
#include "sys/system.h"

using namespace pld;
using namespace pld::rosetta;

namespace {

const fabric::Device &
device()
{
    static fabric::Device d = fabric::makeU50();
    return d;
}

/** Functional (KPN) execution must match the independent golden. */
void
checkFunctional(const Benchmark &bm)
{
    dataflow::GraphRuntime rt(bm.graph);
    rt.pushInput(0, bm.input);
    ASSERT_TRUE(rt.run()) << bm.name << ": " << rt.deadlockReport();
    auto out = rt.takeOutput(0);
    ASSERT_EQ(out.size(), bm.expected.size()) << bm.name;
    for (size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], bm.expected[i]) << bm.name << "[" << i
                                          << "]";
}

} // namespace

// -------- functional equivalence vs golden models -------------------

TEST(Rosetta, RenderingMatchesGolden)
{
    checkFunctional(makeRendering());
}

TEST(Rosetta, DigitRecMatchesGolden) { checkFunctional(makeDigitRec()); }

TEST(Rosetta, SpamMatchesGolden) { checkFunctional(makeSpamFilter()); }

TEST(Rosetta, OpticalFlowMatchesGolden)
{
    checkFunctional(makeOpticalFlow());
}

TEST(Rosetta, FaceDetectMatchesGolden)
{
    checkFunctional(makeFaceDetect());
}

TEST(Rosetta, BnnMatchesGolden) { checkFunctional(makeBnn()); }

// -------- structure and discipline ----------------------------------

TEST(Rosetta, AllGraphsPassDiscipline)
{
    for (const auto &bm : allBenchmarks()) {
        auto diags = ir::validateGraph(bm.graph);
        EXPECT_TRUE(ir::isClean(diags))
            << bm.name << ":\n" << ir::renderDiagnostics(diags);
    }
}

TEST(Rosetta, DecompositionShapes)
{
    auto all = allBenchmarks();
    ASSERT_EQ(all.size(), 6u);
    // Operator counts reflect the paper's decompositions.
    EXPECT_EQ(all[0].graph.ops.size(), 6u);  // rendering
    EXPECT_EQ(all[1].graph.ops.size(), 6u);  // digit rec (systolic)
    EXPECT_EQ(all[2].graph.ops.size(), 7u);  // spam (4 dot lanes)
    EXPECT_EQ(all[3].graph.ops.size(), 7u);  // optical (Fig 2c)
    EXPECT_EQ(all[4].graph.ops.size(), 7u);  // face detect
    EXPECT_EQ(all[5].graph.ops.size(), 8u);  // bnn layers
}

TEST(Rosetta, BenchmarksHaveWork)
{
    for (const auto &bm : allBenchmarks()) {
        EXPECT_FALSE(bm.input.empty()) << bm.name;
        EXPECT_FALSE(bm.expected.empty()) << bm.name;
        EXPECT_GT(bm.itemsPerRun, 0) << bm.name;
    }
}

// -------- end-to-end through the PLD flows ---------------------------

TEST(Rosetta, OpticalFlowThroughO1System)
{
    Benchmark bm = makeOpticalFlow();
    flow::CompileOptions o;
    o.effort = 0.1;
    flow::PldCompiler pc(device(), o);
    auto build = pc.build(bm.graph, flow::OptLevel::O1);
    sys::SystemSim sim(bm.graph, build.bindings, build.sysCfg);
    sim.loadInput(0, bm.input);
    auto rs = sim.run();
    ASSERT_TRUE(rs.completed);
    EXPECT_EQ(sim.takeOutput(0), bm.expected);
}

TEST(Rosetta, SpamThroughO3System)
{
    Benchmark bm = makeSpamFilter();
    flow::CompileOptions o;
    o.effort = 0.1;
    flow::PldCompiler pc(device(), o);
    auto build = pc.build(bm.graph, flow::OptLevel::O3);
    sys::SystemSim sim(bm.graph, build.bindings, build.sysCfg);
    sim.loadInput(0, bm.input);
    auto rs = sim.run();
    ASSERT_TRUE(rs.completed);
    EXPECT_EQ(sim.takeOutput(0), bm.expected);
}

TEST(Rosetta, DigitRecThroughO0Softcores)
{
    Benchmark bm = makeDigitRec();
    flow::CompileOptions o;
    o.effort = 0.1;
    flow::PldCompiler pc(device(), o);
    auto build = pc.build(bm.graph, flow::OptLevel::O0);
    sys::SystemSim sim(bm.graph, build.bindings, build.sysCfg);
    sim.loadInput(0, bm.input);
    auto rs = sim.run(5000000000ull);
    ASSERT_TRUE(rs.completed);
    EXPECT_EQ(sim.takeOutput(0), bm.expected);
}
