#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"

using namespace pld::ir;

namespace {

Graph
makeTwoStage()
{
    OpBuilder b1("stage_a");
    auto i1 = b1.input("in");
    auto o1 = b1.output("out");
    b1.forLoop(0, 4, [&](Ex) { b1.write(o1, b1.read(i1)); });
    OperatorFn a = b1.finish();
    a.pragma = {Target::HW, 3};

    OpBuilder b2("stage_b");
    auto i2 = b2.input("in");
    auto o2 = b2.output("out");
    b2.forLoop(0, 4, [&](Ex) { b2.write(o2, b2.read(i2)); });
    OperatorFn b = b2.finish();
    b.pragma = {Target::RISCV, 7};

    GraphBuilder g("twostage");
    auto gin = g.extIn("Input_1");
    auto gout = g.extOut("Output_1");
    auto mid = g.wire(32);
    g.inst(a, {gin}, {mid});
    g.inst(b, {mid}, {gout});
    return g.finish();
}

} // namespace

TEST(Dfg, ExtractCapturesTopology)
{
    Graph g = makeTwoStage();
    DfgFile dfg = extractDfg(g);
    EXPECT_EQ(dfg.appName, "twostage");
    ASSERT_EQ(dfg.ops.size(), 2u);
    EXPECT_EQ(dfg.ops[0].name, "stage_a");
    EXPECT_EQ(dfg.ops[0].target, Target::HW);
    EXPECT_EQ(dfg.ops[0].page, 3);
    EXPECT_EQ(dfg.ops[1].target, Target::RISCV);
    EXPECT_EQ(dfg.ops[1].page, 7);
    EXPECT_EQ(dfg.links.size(), 3u);
    EXPECT_EQ(dfg.extInputs.size(), 1u);
    EXPECT_EQ(dfg.extOutputs.size(), 1u);
}

TEST(Dfg, RoundTripThroughText)
{
    Graph g = makeTwoStage();
    DfgFile a = extractDfg(g);
    std::string text = emitDfg(a);
    DfgFile b = parseDfg(text);

    EXPECT_EQ(a.appName, b.appName);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (size_t i = 0; i < a.ops.size(); ++i) {
        EXPECT_EQ(a.ops[i].name, b.ops[i].name);
        EXPECT_EQ(a.ops[i].target, b.ops[i].target);
        EXPECT_EQ(a.ops[i].page, b.ops[i].page);
        EXPECT_EQ(a.ops[i].hash, b.ops[i].hash);
        EXPECT_EQ(a.ops[i].numIn, b.ops[i].numIn);
        EXPECT_EQ(a.ops[i].numOut, b.ops[i].numOut);
    }
    ASSERT_EQ(a.links.size(), b.links.size());
    for (size_t i = 0; i < a.links.size(); ++i) {
        EXPECT_EQ(a.links[i].srcOp, b.links[i].srcOp);
        EXPECT_EQ(a.links[i].srcPort, b.links[i].srcPort);
        EXPECT_EQ(a.links[i].dstOp, b.links[i].dstOp);
        EXPECT_EQ(a.links[i].dstPort, b.links[i].dstPort);
        EXPECT_EQ(a.links[i].depth, b.links[i].depth);
    }
    EXPECT_EQ(a.extInputs, b.extInputs);
    EXPECT_EQ(a.extOutputs, b.extOutputs);
}

TEST(Dfg, CommentsAndBlanksIgnored)
{
    Graph g = makeTwoStage();
    std::string text = emitDfg(extractDfg(g));
    text = "# header comment\n\n" + text + "\n# trailing\n";
    DfgFile b = parseDfg(text);
    EXPECT_EQ(b.ops.size(), 2u);
}

TEST(Dfg, HashChangesWhenOperatorEdited)
{
    Graph g = makeTwoStage();
    DfgFile before = extractDfg(g);
    // Edit stage_a: one more loop iteration.
    g.ops[0].fn.body[0]->immHi = 5;
    DfgFile after = extractDfg(g);
    EXPECT_NE(before.ops[0].hash, after.ops[0].hash);
    EXPECT_EQ(before.ops[1].hash, after.ops[1].hash);
}
