/**
 * @file
 * Printer/parser round trip: printOperator() output must re-parse
 * into a structurally equal operator (same contentHash, same
 * re-print) across every statement kind, type kind, and the corner
 * tokens (negative constants, ROM init images, explicit Cast/BitCast
 * type suffixes).
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"

using namespace pld;
using namespace pld::ir;

namespace {

void
expectRoundTrip(const OperatorFn &fn)
{
    std::string printed = printOperator(fn);
    OperatorFn back = parseOperator(printed);
    EXPECT_EQ(printed, printOperator(back)) << printed;
    EXPECT_EQ(fn.contentHash(), back.contentHash()) << printed;
}

} // namespace

TEST(PrinterRoundTrip, AllStatementKinds)
{
    OpBuilder ob("rt_all_stmts");
    PortRef in = ob.input("in0");
    PortRef out = ob.output("out0");
    Var x = ob.var("x", Type::s(32));
    Var acc = ob.var("acc", Type::fx(24, 8));
    Var n = ob.var("n", Type::u(5));
    Arr ram = ob.array("ram", Type::s(12), 8);
    Arr tab = ob.romRaw("tab", Type::u(24), {16777213, 2, 8388608});

    ob.forLoop(0, 4, [&](Ex i) {
        ob.set(x, ob.readAs(in, Type::s(32)).cast(Type::s(32)));
        ob.store(ram, i.cast(Type::u(3)), Ex(x) + 1);
        ob.ifElse(
            Ex(x) > 0,
            [&] { ob.set(acc, Ex(acc) + Ex(x).cast(Type::fx(24, 8))); },
            [&] { ob.set(acc, litF(0.5, Type::fx(24, 8))); });
        ob.set(n, lit(3, Type::u(5)));
        ob.whileLoop(Ex(n) > 0, [&] { ob.set(n, Ex(n) - 1); }, 3);
        ob.print("acc now", {Ex(acc)});
        ob.write(out, (Ex(acc) + tab[i.cast(Type::u(2))]).rawWord());
    });
    expectRoundTrip(ob.finish());
}

TEST(PrinterRoundTrip, ExpressionOperatorsAndTypes)
{
    OpBuilder ob("rt_exprs");
    PortRef in = ob.input("in0");
    PortRef out = ob.output("out0");
    Var a = ob.var("a", Type::s(17));
    Var b = ob.var("b", Type::u(9));
    Var f = ob.var("f", Type::ufx(20, 4));

    ob.set(a, ob.readAs(in, Type::s(17)).cast(Type::s(17)));
    ob.set(b, (Ex(a) * 3 - 7).cast(Type::u(9)));
    ob.set(f, (Ex(b).cast(Type::ufx(20, 4)) / litF(2.0, Type::ufx(20, 4)))
                  .cast(Type::ufx(20, 4)));
    Ex mixed = ob.select(Ex(a) < Ex(b), Ex(a) & Ex(b), ~Ex(a))
                   .cast(Type::s(17));
    Ex logic = ((Ex(a) != 0 && Ex(b) >= 2) || !(Ex(f) > Ex(f))) == 1;
    ob.write(out, ((mixed % 5) ^ (Ex(b) << 2) | logic.cast(Type::u(1)))
                      .rawWord());
    expectRoundTrip(ob.finish());
}

TEST(PrinterRoundTrip, NegativeConstsAndFixedLiterals)
{
    OpBuilder ob("rt_consts");
    PortRef in = ob.input("in0");
    PortRef out = ob.output("out0");
    Var v = ob.var("v", Type::fx(32, 9));
    ob.set(v, ob.readAs(in, Type::fx(32, 9)).cast(Type::fx(32, 9)));
    ob.write(out, (Ex(v) + litF(-13.25, Type::fx(32, 9)) -
                   lit(-123456789, Type::s(32)))
                      .rawWord());
    expectRoundTrip(ob.finish());
}

TEST(PrinterRoundTrip, TargetPragmaAndShifts)
{
    OpBuilder ob("rt_pragma");
    ob.pragma(Target::RISCV, 5);
    PortRef in = ob.input("in0");
    PortRef out = ob.output("out0");
    Var v = ob.var("v", Type::u(31));
    ob.set(v, ob.readAs(in, Type::u(31)).cast(Type::u(31)));
    ob.write(out, ((Ex(v) >> 7) + (Ex(v) << 1)).rawWord());
    expectRoundTrip(ob.finish());
}
