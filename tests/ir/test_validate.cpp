#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/validate.h"

using namespace pld::ir;

namespace {

bool
hasError(const std::vector<Diagnostic> &diags, const std::string &frag)
{
    for (const auto &d : diags) {
        if (d.level == DiagLevel::Error &&
            d.message.find(frag) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

TEST(Validate, CleanOperatorPasses)
{
    OpBuilder b("ok");
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, 8, [&](Ex) { b.write(out, b.read(in)); });
    auto diags = validateOperator(b.finish());
    EXPECT_TRUE(isClean(diags)) << renderDiagnostics(diags);
}

TEST(Validate, NoPortsIsError)
{
    OpBuilder b("lonely");
    auto diags = validateOperator(b.finish());
    EXPECT_FALSE(isClean(diags));
    EXPECT_TRUE(hasError(diags, "no stream ports"));
}

TEST(Validate, TwoReadsInOneStatementIsError)
{
    OpBuilder b("greedy");
    auto in = b.input("in");
    auto out = b.output("out");
    b.write(out, b.read(in) + b.read(in));
    auto diags = validateOperator(b.finish());
    EXPECT_TRUE(hasError(diags, "stream reads"));
}

TEST(Validate, ReadInSelectArmIsError)
{
    OpBuilder b("cond_read");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::u(32));
    b.write(out, b.select(Ex(x) == 0, b.read(in), Ex(x)));
    auto diags = validateOperator(b.finish());
    EXPECT_TRUE(hasError(diags, "conditionally evaluated"));
}

TEST(Validate, ReadInSelectConditionIsAllowed)
{
    OpBuilder b("cond_ok");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::u(32));
    // Condition is always evaluated, so a read there is fine.
    b.write(out,
            b.select(b.read(in).cast(Type::u(32)) == 0, Ex(x),
                     Ex(x) + 1));
    auto diags = validateOperator(b.finish());
    EXPECT_TRUE(isClean(diags)) << renderDiagnostics(diags);
}

TEST(Validate, UnusedPortWarns)
{
    OpBuilder b("deaf");
    b.input("in");
    auto out = b.output("out");
    b.write(out, lit(1, Type::u(32)));
    auto diags = validateOperator(b.finish());
    EXPECT_TRUE(isClean(diags));
    bool warned = false;
    for (const auto &d : diags)
        warned |= (d.level == DiagLevel::Warning &&
                   d.message.find("never used") != std::string::npos);
    EXPECT_TRUE(warned);
}

TEST(Validate, PrintOnHwTargetNotes)
{
    OpBuilder b("chatty");
    auto in = b.input("in");
    auto out = b.output("out");
    b.print("hello");
    b.write(out, b.read(in));
    OperatorFn fn = b.finish();
    fn.pragma.target = Target::HW;
    auto diags = validateOperator(fn);
    bool noted = false;
    for (const auto &d : diags)
        noted |= (d.level == DiagLevel::Note);
    EXPECT_TRUE(noted);
    EXPECT_TRUE(isClean(diags));
}

TEST(Validate, RomSizeMismatchIsError)
{
    OpBuilder b("bad_rom");
    auto in = b.input("in");
    auto out = b.output("out");
    b.write(out, b.read(in));
    OperatorFn fn = b.finish();
    fn.arrays.push_back({"w", Type::s(16), 4, {1, 2}}); // wrong length
    auto diags = validateOperator(fn);
    EXPECT_TRUE(hasError(diags, "init length"));
}

TEST(Validate, GraphValidationAggregates)
{
    OpBuilder b("pass");
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, 2, [&](Ex) { b.write(out, b.read(in)); });
    OperatorFn fn = b.finish();

    Graph g("bad_app");
    int op = g.addOperator(fn);
    int ei = g.addExtInput("I");
    g.connect({Endpoint::kExternal, ei}, {op, 0});
    // Output port left dangling -> graph error.
    auto diags = validateGraph(g);
    EXPECT_FALSE(isClean(diags));
}

TEST(Validate, FixedPointArrayIndexIsError)
{
    OpBuilder b("fuzzy_index");
    auto in = b.input("in");
    auto out = b.output("out");
    auto a = b.array("buf", Type::s(32), 8);
    auto f = b.var("f", Type::fx(16, 8));
    b.store(a, Ex(f), b.read(in).cast(Type::s(32)));
    b.write(out, a[0]);
    auto diags = validateOperator(b.finish());
    EXPECT_TRUE(hasError(diags, "array index"));
}
