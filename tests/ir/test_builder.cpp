#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"

using namespace pld::ir;

namespace {

/** Simple pass-through doubler used by several tests. */
OperatorFn
makeDoubler()
{
    OpBuilder b("doubler");
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", Type::s(32));
    b.forLoop(0, 4, [&](Ex) {
        b.set(x, b.readAs(in, Type::s(32)));
        b.write(out, Ex(x) * 2);
    });
    return b.finish();
}

} // namespace

TEST(Builder, PortsAndDecls)
{
    OperatorFn fn = makeDoubler();
    EXPECT_EQ(fn.name, "doubler");
    EXPECT_EQ(fn.numInputs(), 1);
    EXPECT_EQ(fn.numOutputs(), 1);
    EXPECT_EQ(fn.findPort("in"), 0);
    EXPECT_EQ(fn.findPort("out"), 1);
    EXPECT_EQ(fn.findPort("nope"), -1);
    // One user var + one loop var.
    EXPECT_EQ(fn.vars.size(), 2u);
}

TEST(Builder, BodyShape)
{
    OperatorFn fn = makeDoubler();
    ASSERT_EQ(fn.body.size(), 1u);
    EXPECT_EQ(fn.body[0]->kind, StmtKind::For);
    EXPECT_EQ(fn.body[0]->body.size(), 2u);
    EXPECT_EQ(fn.body[0]->body[0]->kind, StmtKind::Assign);
    EXPECT_EQ(fn.body[0]->body[1]->kind, StmtKind::StreamWrite);
}

TEST(Builder, ContentHashStableAndSensitive)
{
    OperatorFn a = makeDoubler();
    OperatorFn b = makeDoubler();
    EXPECT_EQ(a.contentHash(), b.contentHash());

    OpBuilder c("doubler");
    auto in = c.input("in");
    auto out = c.output("out");
    auto x = c.var("x", Type::s(32));
    c.forLoop(0, 4, [&](Ex) {
        c.set(x, c.readAs(in, Type::s(32)));
        c.write(out, Ex(x) * 3); // different constant
    });
    OperatorFn fn_c = c.finish();
    EXPECT_NE(a.contentHash(), fn_c.contentHash());
}

TEST(Builder, PragmaDoesNotAffectContentHash)
{
    OperatorFn a = makeDoubler();
    OperatorFn b = makeDoubler();
    b.pragma.target = Target::RISCV;
    b.pragma.pageNum = 5;
    EXPECT_EQ(a.contentHash(), b.contentHash());
}

TEST(Builder, PromotionInExpressions)
{
    OpBuilder b("t");
    auto v = b.var("v", Type::fx(32, 17));
    Ex prod = Ex(v) * Ex(v);
    EXPECT_EQ(prod.type().width, 64); // widened like HLS
    EXPECT_EQ(prod.type().intBits, 34);
    Ex sum = Ex(v) + Ex(v);
    EXPECT_EQ(sum.type().width, 33);
    EXPECT_EQ(sum.type().intBits, 18);
    Ex cmp = Ex(v) < Ex(v);
    EXPECT_EQ(cmp.type(), Type::boolean());
}

TEST(Builder, RomInitialization)
{
    OpBuilder b("t");
    b.input("in");
    auto r = b.rom("weights", Type::fx(16, 8), {1.0, -0.5, 0.25});
    (void)r;
    OperatorFn fn = b.finish();
    ASSERT_EQ(fn.arrays.size(), 1u);
    EXPECT_TRUE(fn.arrays[0].isRom());
    EXPECT_EQ(fn.arrays[0].size, 3);
    // 1.0 at 8 fractional bits = 256.
    EXPECT_EQ(fn.arrays[0].init[0], 256);
    EXPECT_EQ(fn.arrays[0].init[1], -128);
    EXPECT_EQ(fn.arrays[0].init[2], 64);
}

TEST(Builder, NestedControlFlow)
{
    OpBuilder b("nest");
    auto in = b.input("in");
    auto out = b.output("out");
    auto acc = b.var("acc", Type::s(32));
    b.forLoop(0, 3, [&](Ex i) {
        b.ifElse(
            i == 1, [&] { b.set(acc, Ex(acc) + 10); },
            [&] { b.set(acc, Ex(acc) + 1); });
    });
    b.write(out, acc);
    (void)in;
    OperatorFn fn = b.finish();
    EXPECT_EQ(fn.body.size(), 2u);
    const auto &loop = fn.body[0];
    ASSERT_EQ(loop->body.size(), 1u);
    EXPECT_EQ(loop->body[0]->kind, StmtKind::If);
    EXPECT_EQ(loop->body[0]->body.size(), 1u);
    EXPECT_EQ(loop->body[0]->elseBody.size(), 1u);
}

TEST(Builder, PrinterProducesReadableDump)
{
    OperatorFn fn = makeDoubler();
    std::string dump = printOperator(fn);
    EXPECT_NE(dump.find("operator doubler"), std::string::npos);
    EXPECT_NE(dump.find("for"), std::string::npos);
    EXPECT_NE(dump.find("write"), std::string::npos);
}

TEST(Builder, LiteralConvenienceTypes)
{
    Ex a = lit(5);
    EXPECT_EQ(a.type(), Type::s(32));
    Ex f = litF(1.5, Type::fx(16, 8));
    EXPECT_EQ(f.node()->imm, 384); // 1.5 * 256
}

TEST(GraphBuilder, WiresResolveToLinks)
{
    OperatorFn d = makeDoubler();
    GraphBuilder g("app");
    auto in = g.extIn("I");
    auto out = g.extOut("O");
    auto mid = g.wire(16);
    g.inst(d, {in}, {mid}, "stage1");
    g.inst(d, {mid}, {out}, "stage2");
    Graph graph = g.finish();
    EXPECT_EQ(graph.ops.size(), 2u);
    EXPECT_EQ(graph.links.size(), 3u);
    EXPECT_TRUE(graph.check().empty());
    EXPECT_EQ(graph.findOp("stage2"), 1);
}

TEST(GraphBuilder, HashCoversTopologyAndPragmas)
{
    OperatorFn d = makeDoubler();
    auto build = [&](Target t) {
        OperatorFn dd = d;
        dd.pragma.target = t;
        GraphBuilder g("app");
        auto in = g.extIn("I");
        auto out = g.extOut("O");
        g.inst(dd, {in}, {out});
        return g.finish();
    };
    Graph a = build(Target::HW);
    Graph b = build(Target::HW);
    Graph c = build(Target::RISCV);
    EXPECT_EQ(a.contentHash(), b.contentHash());
    EXPECT_NE(a.contentHash(), c.contentHash());
}
