#include <gtest/gtest.h>

#include "ir/type.h"

using namespace pld::ir;

TEST(Type, ToStringForms)
{
    EXPECT_EQ(Type::u(32).toString(), "u32");
    EXPECT_EQ(Type::s(8).toString(), "s8");
    EXPECT_EQ(Type::fx(32, 17).toString(), "fx<32,17>");
    EXPECT_EQ(Type::ufx(16, 8).toString(), "ufx<16,8>");
}

TEST(Type, FracBits)
{
    EXPECT_EQ(Type::fx(32, 17).fracBits(), 15);
    EXPECT_EQ(Type::u(32).fracBits(), 0);
}

TEST(Type, PromoteAddGrowsOneBit)
{
    Type r = promoteAdd(Type::s(8), Type::s(8));
    EXPECT_EQ(r.width, 9);
    EXPECT_TRUE(r.isSigned());
}

TEST(Type, PromoteAddGrowsIntoIntermediateWidth)
{
    Type r = promoteAdd(Type::fx(32, 17), Type::fx(32, 17));
    EXPECT_EQ(r.width, 33);
    EXPECT_EQ(r.intBits, 18);
    EXPECT_EQ(r.fracBits(), 15);
}

TEST(Type, PromoteAddCapsAt64)
{
    Type w = promoteAdd(Type::fx(32, 17), Type::fx(32, 17));
    for (int i = 0; i < 40; ++i)
        w = promoteAdd(w, w);
    EXPECT_LE(w.width, 64);
}

TEST(Type, PromoteMulSumsBits)
{
    Type r = promoteMul(Type::s(8), Type::s(8));
    EXPECT_EQ(r.width, 16);
    Type rf = promoteMul(Type::fx(16, 8), Type::fx(16, 8));
    EXPECT_EQ(rf.intBits, 16);
    EXPECT_EQ(rf.fracBits(), 16);
}

TEST(Type, PromoteMulKeepsFullPrecisionLikeHls)
{
    // fx<32,17> * fx<32,17> -> fx<64,34>, matching the paper's
    // ap_fixed<64,40>-style widened intermediates.
    Type r = promoteMul(Type::fx(32, 17), Type::fx(32, 17));
    EXPECT_EQ(r.width, 64);
    EXPECT_EQ(r.intBits, 34);
    EXPECT_EQ(r.fracBits(), 30);
}

TEST(Type, PromoteMulCapsFractionFirstAt64)
{
    Type a = promoteMul(Type::fx(32, 17), Type::fx(32, 17));
    Type r = promoteMul(a, a); // would need 128 bits
    EXPECT_EQ(r.width, 64);
    EXPECT_EQ(r.intBits, 64);
    EXPECT_EQ(r.fracBits(), 0);
}

TEST(Type, PromoteDivKeepsNumeratorShape)
{
    Type r = promoteDiv(Type::fx(32, 17), Type::fx(32, 17));
    EXPECT_EQ(r.width, 32);
    EXPECT_EQ(r.intBits, 17);
}

TEST(Type, MixedSignedness)
{
    EXPECT_TRUE(promoteAdd(Type::u(8), Type::s(8)).isSigned());
    EXPECT_TRUE(promoteBits(Type::u(8), Type::s(16)).isSigned());
    EXPECT_EQ(promoteBits(Type::u(8), Type::u(16)).width, 16);
}

TEST(Type, Equality)
{
    EXPECT_EQ(Type::fx(32, 17), Type::fx(32, 17));
    EXPECT_NE(Type::fx(32, 17), Type::fx(32, 16));
    EXPECT_NE(Type::u(8), Type::s(8));
}
