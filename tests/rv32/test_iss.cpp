#include <gtest/gtest.h>

#include "dataflow/stream.h"
#include "rv32/asm.h"
#include "rv32/iss.h"

using namespace pld;
using namespace pld::rv32;

namespace {

/** Assemble a program and run it on a core with one in/out stream. */
struct IssRig
{
    explicit IssRig(Assembler &a, uint32_t mem_kb = 32)
        : inFifo(0), outFifo(0), inPort(inFifo), outPort(outFifo)
    {
        PldElf elf;
        elf.text = a.assemble();
        elf.memBytes = mem_kb * 1024;
        elf.dataBase = 16 * 1024;
        core = std::make_unique<Core>(
            elf, std::vector<dataflow::StreamPort *>{&inPort,
                                                     &outPort});
    }

    dataflow::WordFifo inFifo, outFifo;
    dataflow::FifoReadPort inPort;
    dataflow::FifoWritePort outPort;
    std::unique_ptr<Core> core;
};

constexpr uint32_t kIn = Mmio::kStreamBase;
constexpr uint32_t kOut = Mmio::kStreamBase + Mmio::kStreamStride;

} // namespace

TEST(Iss, ArithmeticAndHalt)
{
    Assembler a;
    a.li(a0, 21);
    a.add(a0, a0, a0);
    a.li(t0, static_cast<int32_t>(Mmio::kHalt));
    a.sw(x0, t0, 0);
    IssRig rig(a);
    EXPECT_EQ(rig.core->step(100), CoreStatus::Halted);
    EXPECT_EQ(rig.core->reg(a0), 42u);
}

TEST(Iss, EbreakHalts)
{
    Assembler a;
    a.li(a0, 7);
    a.ebreak();
    IssRig rig(a);
    EXPECT_EQ(rig.core->step(100), CoreStatus::Halted);
    EXPECT_TRUE(rig.core->halted());
}

TEST(Iss, LoadStoreMemory)
{
    Assembler a;
    a.li(t0, 0x4000);
    a.li(a0, -123);
    a.sw(a0, t0, 0);
    a.lw(a1, t0, 0);
    a.li(a2, 0x7F);
    a.sb(a2, t0, 8);
    a.lb(a3, t0, 8);
    a.ebreak();
    IssRig rig(a);
    EXPECT_EQ(rig.core->step(100), CoreStatus::Halted);
    EXPECT_EQ(static_cast<int32_t>(rig.core->reg(a1)), -123);
    EXPECT_EQ(rig.core->reg(a3), 0x7Fu);
}

TEST(Iss, MulDivInstructions)
{
    Assembler a;
    a.li(a0, -6);
    a.li(a1, 7);
    a.mul(a2, a0, a1);    // -42
    a.mulh(a3, a0, a1);   // sign bits: -1
    a.li(a4, 100);
    a.li(a5, 7);
    a.div(a6, a4, a5);    // 14
    a.rem(a7, a4, a5);    // 2
    a.ebreak();
    IssRig rig(a);
    rig.core->step(100);
    EXPECT_EQ(static_cast<int32_t>(rig.core->reg(a2)), -42);
    EXPECT_EQ(static_cast<int32_t>(rig.core->reg(a3)), -1);
    EXPECT_EQ(rig.core->reg(a6), 14u);
    EXPECT_EQ(rig.core->reg(a7), 2u);
}

TEST(Iss, DivByZeroRiscvSemantics)
{
    Assembler a;
    a.li(a0, 5);
    a.li(a1, 0);
    a.div(a2, a0, a1);
    a.rem(a3, a0, a1);
    a.ebreak();
    IssRig rig(a);
    rig.core->step(100);
    EXPECT_EQ(rig.core->reg(a2), 0xFFFFFFFFu);
    EXPECT_EQ(rig.core->reg(a3), 5u);
}

TEST(Iss, StreamReadBlocksWithoutSideEffects)
{
    Assembler a;
    a.li(t0, static_cast<int32_t>(kIn));
    a.lw(a0, t0, 0);
    a.ebreak();
    IssRig rig(a);
    EXPECT_EQ(rig.core->step(100), CoreStatus::BlockedOnRead);
    uint32_t pc_blocked = rig.core->pc();
    // Still blocked on a second attempt.
    EXPECT_EQ(rig.core->step(100), CoreStatus::BlockedOnRead);
    EXPECT_EQ(rig.core->pc(), pc_blocked);
    // Data arrives; the retried load succeeds.
    rig.inFifo.push(99);
    EXPECT_EQ(rig.core->step(100), CoreStatus::Halted);
    EXPECT_EQ(rig.core->reg(a0), 99u);
}

TEST(Iss, StreamWriteBlocksWhenFull)
{
    Assembler a;
    a.li(t0, static_cast<int32_t>(kOut));
    a.li(a0, 1);
    a.sw(a0, t0, 0);
    a.li(a0, 2);
    a.sw(a0, t0, 0);
    a.ebreak();

    // Output FIFO with capacity 1.
    dataflow::WordFifo inF(0), outF(1);
    dataflow::FifoReadPort ip(inF);
    dataflow::FifoWritePort op(outF);
    PldElf elf;
    elf.text = a.assemble();
    elf.memBytes = 32 * 1024;
    Core core(elf, {&ip, &op});
    EXPECT_EQ(core.step(100), CoreStatus::BlockedOnWrite);
    EXPECT_EQ(outF.pop(), 1u);
    EXPECT_EQ(core.step(100), CoreStatus::Halted);
    EXPECT_EQ(outF.pop(), 2u);
}

TEST(Iss, StreamStatusRegister)
{
    Assembler a;
    a.li(t0, static_cast<int32_t>(kIn + Mmio::kStatusOffset));
    a.lw(a0, t0, 0); // in: empty -> canRead=0, canWrite=0 (read port)
    a.ebreak();
    IssRig rig(a);
    rig.inFifo.push(5);
    rig.core->step(10);
    EXPECT_EQ(rig.core->reg(a0) & 1u, 1u) << "canRead bit";
}

TEST(Iss, ConsoleOutput)
{
    Assembler a;
    a.li(t0, static_cast<int32_t>(Mmio::kConsolePutc));
    for (char c : std::string("hi"))
        { a.li(t1, c); a.sw(t1, t0, 0); }
    a.ebreak();
    IssRig rig(a);
    rig.core->step(100);
    EXPECT_EQ(rig.core->consoleOut(), "hi");
}

TEST(Iss, CyclesReflectPicoRv32Costs)
{
    Assembler a;
    a.li(a0, 1);      // 3 cycles
    a.li(a1, 2);      // 3
    a.div(a2, a0, a1); // 40
    a.ebreak();
    IssRig rig(a);
    rig.core->step(100);
    EXPECT_GE(rig.core->cycles(), 46u);
    EXPECT_EQ(rig.core->instret(), 4u);
}

TEST(Iss, TrapOnIllegalInstruction)
{
    PldElf elf;
    elf.text = {0xFFFFFFFF};
    elf.memBytes = 16 * 1024;
    Core core(elf, {});
    EXPECT_EQ(core.step(10), CoreStatus::Trapped);
    EXPECT_FALSE(core.trapReason().empty());
}

TEST(Iss, BranchLoop)
{
    Assembler a;
    a.li(a0, 0);
    a.li(a1, 10);
    a.label("loop");
    a.addi(a0, a0, 1);
    a.blt(a0, a1, "loop");
    a.ebreak();
    IssRig rig(a);
    EXPECT_EQ(rig.core->step(1000), CoreStatus::Halted);
    EXPECT_EQ(rig.core->reg(a0), 10u);
}
