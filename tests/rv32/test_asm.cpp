#include <gtest/gtest.h>

#include "rv32/asm.h"
#include "rv32/elf.h"

using namespace pld::rv32;

TEST(Asm, EncodesKnownInstructions)
{
    Assembler a;
    a.addi(a0, x0, 42);  // addi a0, zero, 42
    a.add(a1, a0, a0);   // add a1, a0, a0
    a.lw(a2, sp, 8);     // lw a2, 8(sp)
    a.sw(a2, sp, 12);    // sw a2, 12(sp)
    auto w = a.assemble();
    // Cross-checked against riscv reference encodings.
    EXPECT_EQ(w[0], 0x02A00513u);
    EXPECT_EQ(w[1], 0x00A505B3u);
    EXPECT_EQ(w[2], 0x00812603u);
    EXPECT_EQ(w[3], 0x00C12623u);
}

TEST(Asm, BranchBackwardsResolves)
{
    Assembler a;
    a.label("top");
    a.addi(t0, t0, 1);
    a.bne(t0, t1, "top"); // offset -4
    auto w = a.assemble();
    // bne t0,t1,-4: imm=-4 over B-type.
    EXPECT_EQ(w[1] & 0x7F, 0x63u);
    // Simplest check: decoded offset.
    uint32_t inst = w[1];
    int32_t imm =
        ((inst >> 31) & 1) << 12 | ((inst >> 7) & 1) << 11 |
        ((inst >> 25) & 0x3F) << 5 | ((inst >> 8) & 0xF) << 1;
    imm = (imm << 19) >> 19;
    EXPECT_EQ(imm, -4);
}

TEST(Asm, JalForwardResolves)
{
    Assembler a;
    a.j("end");
    a.nop();
    a.nop();
    a.label("end");
    a.nop();
    auto w = a.assemble();
    uint32_t inst = w[0];
    EXPECT_EQ(inst & 0x7F, 0x6Fu);
    int32_t imm = (((inst >> 31) & 1) << 20) |
                  (((inst >> 12) & 0xFF) << 12) |
                  (((inst >> 20) & 1) << 11) |
                  (((inst >> 21) & 0x3FF) << 1);
    imm = (imm << 11) >> 11;
    EXPECT_EQ(imm, 12);
}

TEST(Asm, LiHandlesFullRange)
{
    // li is two instructions for big constants, one for small.
    Assembler small;
    small.li(a0, 100);
    EXPECT_EQ(small.assemble().size(), 1u);

    Assembler big;
    big.li(a0, 0x12345678);
    EXPECT_EQ(big.assemble().size(), 2u);

    Assembler neg;
    neg.li(a0, -1);
    EXPECT_EQ(neg.assemble().size(), 1u);
}

TEST(Asm, GenLabelUnique)
{
    Assembler a;
    EXPECT_NE(a.genLabel("x"), a.genLabel("x"));
}

TEST(Elf, PackUnpackRoundTrip)
{
    PldElf e;
    e.entry = 0;
    e.memBytes = 32 * 1024;
    e.pageNum = 7;
    e.text = {0x13, 0x6F, 0xDEADBEEF};
    e.dataBase = 0x4000;
    e.data = {1, 2, 3, 4, 5};

    auto bytes = e.pack();
    PldElf f = PldElf::unpack(bytes);
    EXPECT_EQ(f.entry, e.entry);
    EXPECT_EQ(f.memBytes, e.memBytes);
    EXPECT_EQ(f.pageNum, e.pageNum);
    EXPECT_EQ(f.text, e.text);
    EXPECT_EQ(f.dataBase, e.dataBase);
    EXPECT_EQ(f.data, e.data);
}

TEST(Elf, FootprintCountsCodePlusData)
{
    PldElf e;
    e.text = {1, 2, 3};
    e.data = {9, 9};
    EXPECT_EQ(e.footprintBytes(), 14u);
}
