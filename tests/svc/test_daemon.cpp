/**
 * @file
 * Service-level tests for the compile daemon: cross-client
 * coalescing (N identical requests, exactly one backend compile),
 * bounded-queue admission rejection as a structured diagnostic,
 * bit-identity of daemon-built artifacts against direct library
 * builds at different thread counts, warm-restart store hits, swap
 * against a store-served base, fault containment per request, the
 * per-request trace file, and the kill-the-client regression (a
 * client hanging up mid-compile never strands a second client).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <future>
#include <thread>

#include "fabric/device.h"
#include "ir/builder.h"
#include "svc/client.h"
#include "svc/coalesce.h"
#include "svc/server.h"
#include "svc/service.h"

using namespace pld;
using namespace pld::svc;
namespace fs = std::filesystem;

namespace {

constexpr ir::Type kFx = ir::Type::fx(32, 17);

/** Two-operator scale→offset pipeline; @p factor distinguishes
 * graph "edits" (different factor → different IR hash → different
 * request key). */
ir::Graph
makePipeline(double factor)
{
    ir::OpBuilder s("scale");
    auto sin = s.input("Input_1");
    auto sout = s.output("mid");
    auto sx = s.var("x", kFx);
    s.pragma(ir::Target::HW);
    s.forLoop(0, 16, [&](ir::Ex) {
        s.set(sx, s.read(sin).bitcast(kFx));
        s.write(sout, (ir::Ex(sx) * ir::litF(factor, kFx)).cast(kFx));
    });

    ir::OpBuilder o("offset");
    auto oin = o.input("mid");
    auto oout = o.output("Output_1");
    auto ox = o.var("x", kFx);
    o.pragma(ir::Target::HW);
    o.forLoop(0, 16, [&](ir::Ex) {
        o.set(ox, o.read(oin).bitcast(kFx));
        o.write(oout, (ir::Ex(ox) + ir::litF(-2.0, kFx)).cast(kFx));
    });

    ir::GraphBuilder gb("svc_app");
    auto in = gb.extIn("Input_1");
    auto out = gb.extOut("Output_1");
    auto mid = gb.wire();
    gb.inst(s.finish(), {in}, {mid});
    gb.inst(o.finish(), {mid}, {out});
    return gb.finish();
}

CompileRequest
makeRequest(double factor, uint32_t jobs = 0)
{
    CompileRequest req;
    req.opts.level = 1; // O1
    req.opts.parallelJobs = jobs;
    req.graphText = encodeGraphText(makePipeline(factor));
    return req;
}

class DaemonTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/pld_daemon_test_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir = tmpl;
        dev = fabric::makeU50();
        cfg.storeDir = dir + "/store";
    }

    void
    TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir, ec);
    }

    std::string dir;
    fabric::Device dev;
    ServiceConfig cfg;
};

// ---- coalescer unit behaviour ------------------------------------

TEST(Coalescer, ClaimJoinPublish)
{
    Coalescer<int> c;
    ASSERT_EQ(c.enter(1), Coalescer<int>::Role::Claimant);
    ASSERT_EQ(c.enter(1), Coalescer<int>::Role::Joined);

    std::thread waiter([&] {
        auto out = c.wait(1);
        EXPECT_FALSE(out.reclaimed);
        ASSERT_NE(out.result, nullptr);
        EXPECT_EQ(*out.result, 42);
    });
    c.publish(1, std::make_shared<const int>(42));
    waiter.join();
    EXPECT_EQ(c.inflightCount(), 0u);
}

TEST(Coalescer, FailWakesExactlyOneReclaimant)
{
    Coalescer<int> c;
    ASSERT_EQ(c.enter(9), Coalescer<int>::Role::Claimant);
    ASSERT_EQ(c.enter(9), Coalescer<int>::Role::Joined);
    ASSERT_EQ(c.enter(9), Coalescer<int>::Role::Joined);

    std::atomic<int> reclaims{0}, results{0};
    auto waitOnce = [&] {
        auto out = c.wait(9);
        if (out.reclaimed) {
            ++reclaims;
            // The re-claimant finishes the job for everyone else.
            c.publish(9, std::make_shared<const int>(7));
        } else {
            EXPECT_EQ(*out.result, 7);
            ++results;
        }
    };
    std::thread w1(waitOnce), w2(waitOnce);
    // The claimant dies without a result (the RAII sentinel path).
    c.fail(9);
    w1.join();
    w2.join();
    EXPECT_EQ(reclaims.load(), 1) << "exactly one waiter re-claims";
    EXPECT_EQ(results.load(), 1);
}

TEST(Coalescer, SentinelFiresOnUnwindOnly)
{
    Coalescer<int> c;
    c.enter(3);
    {
        Coalescer<int>::Sentinel s(c, 3);
        c.publish(3, std::make_shared<const int>(1));
        s.disarm();
    }
    // Disarmed: the publish stood; a new enter claims fresh.
    EXPECT_EQ(c.enter(3), Coalescer<int>::Role::Claimant);
    {
        Coalescer<int>::Sentinel s(c, 3);
        // no publish: simulated throw
    }
    EXPECT_EQ(c.enter(3), Coalescer<int>::Role::Claimant)
        << "failed claim with no waiters must retire the entry";
}

// ---- service behaviour -------------------------------------------

TEST_F(DaemonTest, NConcurrentIdenticalRequestsOneCompile)
{
    constexpr int kClients = 8;
    CompileService svcc(dev, cfg);
    CompileRequest req = makeRequest(1.5);

    // Hold the claimant inside execution until every client has
    // submitted, so the others deterministically join in flight.
    svcc.setExecuteHook([&] {
        while (svcc.stats().submitted.load() < kClients)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });

    std::vector<std::thread> clients;
    std::vector<CompileResponse> resp(kClients);
    for (int i = 0; i < kClients; ++i)
        clients.emplace_back(
            [&, i] { resp[i] = svcc.compile(req); });
    for (auto &t : clients)
        t.join();

    EXPECT_EQ(svcc.stats().storeMisses.load(), 1u)
        << "identical edits must trigger exactly one backend compile";
    EXPECT_EQ(svcc.stats().coalesced.load() +
                  svcc.stats().storeHits.load(),
              static_cast<uint64_t>(kClients - 1));
    EXPECT_GE(svcc.stats().coalesced.load(), 1u);
    for (int i = 0; i < kClients; ++i) {
        EXPECT_EQ(resp[i].status, RespStatus::Ok) << "client " << i;
        EXPECT_EQ(resp[i].blob, resp[0].blob)
            << "all clients must see the identical artifact";
    }
}

TEST_F(DaemonTest, AdmissionRejectionIsStructuredNotAHang)
{
    cfg.maxExecuting = 1;
    cfg.maxQueued = 0;
    CompileService svcc(dev, cfg);

    std::promise<void> entered, release;
    auto released = release.get_future().share();
    svcc.setExecuteHook([&, flagged = std::make_shared<
                                std::atomic<bool>>(false)]() mutable {
        if (!flagged->exchange(true))
            entered.set_value();
        released.wait();
    });

    CompileResponse holder_resp;
    std::thread holder([&] {
        holder_resp = svcc.compile(makeRequest(1.5));
    });
    entered.get_future().wait();
    svcc.setExecuteHook(nullptr);

    // Queue bound is zero and the only slot is held: a *different*
    // request must come back rejected immediately — a structured
    // diagnostic, not a hang and not an abort.
    CompileResponse rejected = svcc.compile(makeRequest(2.5));
    EXPECT_EQ(rejected.status, RespStatus::Rejected);
    ASSERT_FALSE(rejected.diags.diags.empty());
    const Diagnostic &d = rejected.diags.diags.front();
    EXPECT_EQ(d.code, CompileCode::AdmissionRejected);
    EXPECT_EQ(d.severity, DiagSeverity::Error);
    EXPECT_TRUE(d.retriable);
    EXPECT_NE(d.detail.find("queue full"), std::string::npos);
    EXPECT_EQ(svcc.stats().rejected.load(), 1u);

    release.set_value();
    holder.join();
    EXPECT_EQ(holder_resp.status, RespStatus::Ok)
        << "the executing request must be unaffected by rejections";

    // The rejected request succeeds on resubmit (retriable).
    EXPECT_EQ(svcc.compile(makeRequest(2.5)).status, RespStatus::Ok);
}

TEST_F(DaemonTest, DaemonArtifactBitIdenticalToDirectBuild)
{
    // Direct library build, single-threaded.
    ir::Graph g = makePipeline(1.5);
    flow::CompileOptions copts;
    copts.parallelJobs = 1;
    flow::PldCompiler direct(dev, copts);
    auto direct_blob =
        BuildArtifact::fromAppBuild(direct.build(g, flow::OptLevel::O1))
            .encode();

    // Service builds at parallelJobs 1 and 4, separate cold stores.
    for (uint32_t jobs : {1u, 4u}) {
        ServiceConfig jcfg = cfg;
        jcfg.storeDir = dir + "/store_j" + std::to_string(jobs);
        CompileService svcc(dev, jcfg);
        CompileRequest req = makeRequest(1.5, jobs);
        CompileResponse resp = svcc.compile(req);
        ASSERT_EQ(resp.status, RespStatus::Ok);
        EXPECT_FALSE(resp.storeHit);
        EXPECT_EQ(resp.blob, direct_blob)
            << "daemon artifact at parallelJobs=" << jobs
            << " must be bit-identical to the direct build";
    }

    // And the request key ignores parallelJobs entirely, so those
    // requests would have coalesced had they shared a daemon.
    EXPECT_EQ(CompileService::requestKey(makeRequest(1.5, 1)),
              CompileService::requestKey(makeRequest(1.5, 4)));
}

TEST_F(DaemonTest, WarmRestartServesStoreHitAndSwaps)
{
    CompileRequest req = makeRequest(1.5);
    uint64_t base_key = 0;
    {
        CompileService first(dev, cfg);
        CompileResponse r = first.compile(req);
        ASSERT_EQ(r.status, RespStatus::Ok);
        EXPECT_FALSE(r.storeHit);
        base_key = r.key;
    } // daemon "restart": service torn down, store dir survives

    CompileService second(dev, cfg);
    CompileResponse r2 = second.compile(req);
    ASSERT_EQ(r2.status, RespStatus::Ok);
    EXPECT_TRUE(r2.storeHit)
        << "a warm-restarted daemon must serve the on-disk artifact";
    EXPECT_EQ(r2.key, base_key);
    EXPECT_EQ(second.store().stats().hits.load(), 1u);

    // Hot-swap an edited operator against the store-served base.
    SwapRequest sw;
    sw.opts = req.opts;
    sw.baseBuild = base_key;
    sw.opName = "scale";
    sw.graphText = encodeGraphText(makePipeline(1.75));
    CompileResponse r3 = second.swap(sw);
    ASSERT_EQ(r3.status, RespStatus::Ok) << r3.diags.render();
    SwapBlob sb = SwapBlob::decode(r3.blob);
    EXPECT_EQ(sb.op, "scale");
    EXPECT_TRUE(sb.fnChanged);
    EXPECT_TRUE(sb.binding.hasFallback);
}

TEST_F(DaemonTest, SwapAgainstUnknownBaseIsDiagnosed)
{
    CompileService svcc(dev, cfg);
    SwapRequest sw;
    sw.baseBuild = 0xdeadbeef;
    sw.opName = "scale";
    sw.graphText = encodeGraphText(makePipeline(1.5));
    CompileResponse r = svcc.swap(sw);
    EXPECT_EQ(r.status, RespStatus::Failed);
    ASSERT_FALSE(r.diags.diags.empty());
    EXPECT_EQ(r.diags.diags.front().code, CompileCode::SwapRejected);
    EXPECT_EQ(r.diags.diags.front().stage, CompileStage::Swap);
}

TEST_F(DaemonTest, InjectedFaultContainedToRequestingClient)
{
    CompileService svcc(dev, cfg);

    // Every compile of 'scale' throws for THIS request only.
    CompileRequest faulty = makeRequest(1.5);
    faulty.opts.faultSpec = "throw:scale";
    CompileResponse bad = svcc.compile(faulty);
    EXPECT_EQ(bad.status, RespStatus::Failed);
    EXPECT_FALSE(bad.diags.diags.empty());
    EXPECT_EQ(svcc.stats().failed.load(), 1u);

    // A clean client with the same graph is unaffected (different
    // request key, different backend compiler) and the failure was
    // never stored.
    CompileResponse good = svcc.compile(makeRequest(1.5));
    EXPECT_EQ(good.status, RespStatus::Ok);
    EXPECT_FALSE(good.storeHit);
    EXPECT_FALSE(good.blob.empty());

    // A malformed fault spec is a structured diagnostic, not a crash.
    CompileRequest bad_spec = makeRequest(1.5);
    bad_spec.opts.faultSpec = "not_a_fault_kind:zzz";
    CompileResponse r = svcc.compile(bad_spec);
    EXPECT_EQ(r.status, RespStatus::Failed);
    ASSERT_FALSE(r.diags.diags.empty());
    EXPECT_EQ(r.diags.diags.front().code,
              CompileCode::FaultSpecInvalid);
}

TEST_F(DaemonTest, PerRequestTraceFileWritten)
{
    CompileService svcc(dev, cfg);
    CompileRequest req = makeRequest(1.5);
    req.opts.traceFile = dir + "/request.trace.json";
    CompileResponse r = svcc.compile(req);
    ASSERT_EQ(r.status, RespStatus::Ok);

    std::ifstream f(req.opts.traceFile);
    ASSERT_TRUE(f.is_open()) << "trace file must exist";
    std::string text((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("traceEvents"), std::string::npos);
    EXPECT_NE(text.find("pld.op"), std::string::npos)
        << "the per-request trace must contain compile spans";
}

// ---- socket-level tests ------------------------------------------

TEST_F(DaemonTest, SocketRoundTripAndStats)
{
    CompileService svcc(dev, cfg);
    DaemonServer server(svcc, dir + "/pldd.sock");
    server.start();

    Client client(server.socketPath());
    ASSERT_TRUE(client.connect());
    CompileResponse r = client.compile(makeRequest(1.5));
    EXPECT_EQ(r.status, RespStatus::Ok);
    EXPECT_FALSE(r.blob.empty());

    std::string stats = client.stats();
    EXPECT_NE(stats.find("svc.submitted 1"), std::string::npos)
        << stats;

    EXPECT_TRUE(client.shutdownDaemon());
    server.waitForShutdownRequest();
    server.stop();
}

TEST_F(DaemonTest, ClientDeathMidCompileNeverStrandsWaiters)
{
    CompileService svcc(dev, cfg);
    DaemonServer server(svcc, dir + "/pldd.sock");
    server.start();
    CompileRequest req = makeRequest(3.25);

    // Client A fires the request and hangs up without reading the
    // response — its handler thread is now compiling for a dead peer.
    {
        Client a(server.socketPath());
        ASSERT_TRUE(a.connect());
        a.submitOnly(req);
    } // destructor closes the socket

    // Client B submits the identical request and must receive the
    // artifact: either it coalesces onto A's in-flight compile, or
    // A's finished result is served from the store/coalescer.
    Client b(server.socketPath());
    ASSERT_TRUE(b.connect());
    CompileResponse r = b.compile(req);
    EXPECT_EQ(r.status, RespStatus::Ok);
    EXPECT_FALSE(r.blob.empty());

    server.stop(); // joins A's handler
    EXPECT_EQ(svcc.stats().storeMisses.load(), 1u)
        << "the dead client's compile and B's must have shared one "
           "backend execution";
}

} // namespace
