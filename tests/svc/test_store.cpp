/**
 * @file
 * ArtifactStore unit tests: content-address round-trips, LRU
 * eviction under a byte budget, corrupt-entry detection with
 * recompile-once semantics, cross-run reuse through a second store
 * instance on the same directory, and concurrent readers/writers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "svc/store.h"

using namespace pld;
using namespace pld::svc;
namespace fs = std::filesystem;

namespace {

std::vector<uint8_t>
payloadFor(uint64_t key, size_t size)
{
    std::vector<uint8_t> p(size);
    for (size_t i = 0; i < size; ++i)
        p[i] = static_cast<uint8_t>((key * 31 + i * 7) & 0xff);
    return p;
}

class StoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/pld_store_test_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir = tmpl;
    }

    void
    TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir, ec);
    }

    std::string dir;
};

TEST_F(StoreTest, RoundTripExactBytes)
{
    ArtifactStore store(dir, 1 << 20);
    auto p = payloadFor(42, 1000);
    store.put(42, p);
    auto got = store.get(42);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, p);
    EXPECT_EQ(store.stats().hits.load(), 1u);
    EXPECT_EQ(store.stats().misses.load(), 0u);
    EXPECT_EQ(store.bytesStored(), 1000u);

    EXPECT_FALSE(store.get(43).has_value());
    EXPECT_EQ(store.stats().misses.load(), 1u);
}

TEST_F(StoreTest, OverwriteReplacesPayload)
{
    ArtifactStore store(dir, 1 << 20);
    store.put(7, payloadFor(7, 100));
    store.put(7, payloadFor(8, 200));
    auto got = store.get(7);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payloadFor(8, 200));
    EXPECT_EQ(store.entryCount(), 1u);
    EXPECT_EQ(store.bytesStored(), 200u);
}

TEST_F(StoreTest, LruEvictionByByteBudgetRefreshedByGets)
{
    // Budget fits exactly three 100-byte entries.
    ArtifactStore store(dir, 300);
    store.put(1, payloadFor(1, 100));
    store.put(2, payloadFor(2, 100));
    store.put(3, payloadFor(3, 100));
    EXPECT_EQ(store.entryCount(), 3u);

    // Refresh 1: the least-recently-USED entry is now 2, not 1.
    ASSERT_TRUE(store.get(1).has_value());
    store.put(4, payloadFor(4, 100));

    EXPECT_FALSE(store.contains(2)) << "LRU victim must be the "
                                       "least-recently-used entry";
    EXPECT_TRUE(store.contains(1));
    EXPECT_TRUE(store.contains(3));
    EXPECT_TRUE(store.contains(4));
    EXPECT_EQ(store.stats().evictions.load(), 1u);
    EXPECT_EQ(store.bytesStored(), 300u);

    // A large put evicts as many victims as it takes: fitting 250
    // bytes under the 300-byte budget means all three residents go.
    store.put(5, payloadFor(5, 250));
    EXPECT_TRUE(store.contains(5));
    EXPECT_EQ(store.bytesStored(), 250u);
    EXPECT_EQ(store.stats().evictions.load(), 4u);
}

TEST_F(StoreTest, OversizePayloadNeverStored)
{
    ArtifactStore store(dir, 100);
    store.put(1, payloadFor(1, 101));
    EXPECT_FALSE(store.contains(1));
    EXPECT_EQ(store.stats().oversize.load(), 1u);
    EXPECT_EQ(store.entryCount(), 0u);
}

TEST_F(StoreTest, CorruptEntryDetectedEvictedRecompiledOnce)
{
    ArtifactStore store(dir, 1 << 20);
    auto p = payloadFor(99, 500);
    store.put(99, p);

    // Flip one payload bit on disk behind the store's back.
    {
        std::fstream f(store.entryPath(99),
                       std::ios::in | std::ios::out |
                           std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekg(0, std::ios::end);
        auto end = f.tellg();
        f.seekp(static_cast<std::streamoff>(end) - 10);
        char c;
        f.seekg(static_cast<std::streamoff>(end) - 10);
        f.read(&c, 1);
        c = static_cast<char>(c ^ 0x40);
        f.seekp(static_cast<std::streamoff>(end) - 10);
        f.write(&c, 1);
    }

    // The corrupt entry is never served: get misses, evicts, counts.
    EXPECT_FALSE(store.get(99).has_value());
    EXPECT_EQ(store.stats().corrupt.load(), 1u);
    EXPECT_FALSE(store.contains(99));

    // "Recompile" (put) exactly once; the next get hits again.
    store.put(99, p);
    auto got = store.get(99);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, p);
    EXPECT_EQ(store.stats().corrupt.load(), 1u)
        << "one corruption, one recompile — not a corrupt-loop";
}

TEST_F(StoreTest, CorruptHeaderAlsoEvicted)
{
    ArtifactStore store(dir, 1 << 20);
    store.put(5, payloadFor(5, 64));
    {
        std::ofstream f(store.entryPath(5),
                        std::ios::binary | std::ios::trunc);
        f << "not a store entry";
    }
    EXPECT_FALSE(store.get(5).has_value());
    EXPECT_EQ(store.stats().corrupt.load(), 1u);
    EXPECT_FALSE(store.contains(5));
}

TEST_F(StoreTest, CrossRunReuseViaSecondInstance)
{
    auto p1 = payloadFor(1, 300);
    auto p2 = payloadFor(2, 400);
    {
        ArtifactStore first(dir, 1 << 20);
        first.put(1, p1);
        first.put(2, p2);
    } // destructor persists the index

    ArtifactStore second(dir, 1 << 20);
    EXPECT_EQ(second.entryCount(), 2u);
    EXPECT_EQ(second.bytesStored(), 700u);
    auto g1 = second.get(1);
    auto g2 = second.get(2);
    ASSERT_TRUE(g1.has_value());
    ASSERT_TRUE(g2.has_value());
    EXPECT_EQ(*g1, p1);
    EXPECT_EQ(*g2, p2);
    EXPECT_EQ(second.stats().hits.load(), 2u);
}

TEST_F(StoreTest, LruOrderSurvivesRestart)
{
    {
        ArtifactStore first(dir, 300);
        first.put(1, payloadFor(1, 100));
        first.put(2, payloadFor(2, 100));
        first.put(3, payloadFor(3, 100));
        ASSERT_TRUE(first.get(1).has_value()); // 2 is now LRU
    }
    ArtifactStore second(dir, 300);
    EXPECT_EQ(second.keysByRecency().front(), 2u)
        << "recency must survive the restart";
    second.put(4, payloadFor(4, 100));
    EXPECT_FALSE(second.contains(2));
    EXPECT_TRUE(second.contains(1));
}

TEST_F(StoreTest, MissingIndexRanksUnknownEntriesOldest)
{
    {
        ArtifactStore first(dir, 1 << 20);
        first.put(10, payloadFor(10, 100));
        first.put(20, payloadFor(20, 100));
    }
    fs::remove(dir + "/lru.txt");
    ArtifactStore second(dir, 1 << 20);
    EXPECT_EQ(second.entryCount(), 2u);
    // Both unknown to the index: ordered among themselves by key.
    auto order = second.keysByRecency();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 10u);
    EXPECT_EQ(order[1], 20u);
}

/** Concurrent readers and writers at a given thread count: every
 * get that returns must return exactly the content-addressed bytes,
 * and hits + misses must equal the number of gets. */
void
hammerStore(const std::string &dir, int threads)
{
    ArtifactStore store(dir, 1 << 20);
    constexpr int kKeys = 16;
    constexpr int kItersPerThread = 200;
    std::atomic<uint64_t> gets{0};

    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (int i = 0; i < kItersPerThread; ++i) {
                uint64_t key =
                    static_cast<uint64_t>((t * 31 + i) % kKeys);
                if ((t + i) % 3 == 0) {
                    store.put(key, payloadFor(key, 64 + key));
                } else {
                    ++gets;
                    auto got = store.get(key);
                    if (got.has_value()) {
                        ASSERT_EQ(*got, payloadFor(key, 64 + key))
                            << "stale or torn payload for key "
                            << key;
                    }
                }
            }
        });
    }
    for (auto &t : pool)
        t.join();

    EXPECT_EQ(store.stats().hits.load() + store.stats().misses.load(),
              gets.load());
    EXPECT_EQ(store.stats().corrupt.load(), 0u);
}

TEST_F(StoreTest, ConcurrentAccessSingleThread) { hammerStore(dir, 1); }

TEST_F(StoreTest, ConcurrentAccessEightThreads)
{
    hammerStore(dir, 8);
}

} // namespace
