/**
 * @file
 * Seeded random interleaving of compile / swap / evict-pressure
 * requests against one CompileService, asserting the store and
 * accounting invariants the daemon's correctness rests on:
 *
 *  - no checksum-mismatched artifact is ever served: every Ok
 *    compile response is bit-identical to the canonical direct-build
 *    blob for its graph, even while entries are being evicted by a
 *    tiny byte budget and corrupted behind the store's back;
 *  - every request is classified exactly once:
 *      submitted == rejected + coalesced + storeHits + storeMisses.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <thread>

#include "fabric/device.h"
#include "ir/builder.h"
#include "svc/service.h"

using namespace pld;
using namespace pld::svc;
namespace fs = std::filesystem;

namespace {

constexpr ir::Type kFx = ir::Type::fx(32, 17);

ir::Graph
makePipeline(double factor)
{
    ir::OpBuilder s("scale");
    auto sin = s.input("Input_1");
    auto sout = s.output("mid");
    auto sx = s.var("x", kFx);
    s.pragma(ir::Target::HW);
    s.forLoop(0, 16, [&](ir::Ex) {
        s.set(sx, s.read(sin).bitcast(kFx));
        s.write(sout, (ir::Ex(sx) * ir::litF(factor, kFx)).cast(kFx));
    });

    ir::OpBuilder o("offset");
    auto oin = o.input("mid");
    auto oout = o.output("Output_1");
    auto ox = o.var("x", kFx);
    o.pragma(ir::Target::HW);
    o.forLoop(0, 16, [&](ir::Ex) {
        o.set(ox, o.read(oin).bitcast(kFx));
        o.write(oout, (ir::Ex(ox) + ir::litF(-2.0, kFx)).cast(kFx));
    });

    ir::GraphBuilder gb("svc_app");
    auto in = gb.extIn("Input_1");
    auto out = gb.extOut("Output_1");
    auto mid = gb.wire();
    gb.inst(s.finish(), {in}, {mid});
    gb.inst(o.finish(), {mid}, {out});
    return gb.finish();
}

TEST(SvcStress, RandomInterleavingHoldsStoreInvariants)
{
    char tmpl[] = "/tmp/pld_svc_stress_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    std::string dir = tmpl;

    fabric::Device dev = fabric::makeU50();

    // Canonical expected blob per graph variant, from direct
    // single-threaded library builds.
    constexpr int kVariants = 4;
    std::vector<CompileRequest> reqs(kVariants);
    std::vector<std::vector<uint8_t>> expected(kVariants);
    std::vector<uint64_t> keys(kVariants);
    {
        flow::CompileOptions copts;
        copts.parallelJobs = 1;
        flow::PldCompiler direct(dev, copts);
        for (int v = 0; v < kVariants; ++v) {
            double factor = 1.25 + 0.5 * v;
            reqs[v].opts.level = 1;
            reqs[v].graphText = encodeGraphText(makePipeline(factor));
            expected[v] =
                BuildArtifact::fromAppBuild(
                    direct.build(makePipeline(factor),
                                 flow::OptLevel::O1))
                    .encode();
            keys[v] = CompileService::requestKey(reqs[v]);
        }
    }

    ServiceConfig cfg;
    cfg.storeDir = dir + "/store";
    // Budget holds only ~2 artifact blobs: constant evict pressure.
    cfg.storeBudgetBytes = 2000;
    cfg.maxExecuting = 2;
    cfg.maxQueued = 2;
    CompileService svcc(dev, cfg);

    constexpr int kThreads = 4;
    constexpr int kItersPerThread = 60;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            std::mt19937 rng(1234u + static_cast<unsigned>(t));
            for (int i = 0; i < kItersPerThread; ++i) {
                int v = static_cast<int>(rng() % kVariants);
                unsigned action = rng() % 10;
                if (action < 7) {
                    // Compile (random parallelJobs — keys ignore it).
                    CompileRequest r = reqs[v];
                    r.opts.parallelJobs = (rng() % 2) ? 1 : 8;
                    CompileResponse resp = svcc.compile(r);
                    if (resp.status == RespStatus::Ok) {
                        ASSERT_EQ(resp.blob, expected[v])
                            << "served artifact diverged from the "
                               "canonical build for variant "
                            << v;
                    } else {
                        ASSERT_EQ(resp.status, RespStatus::Rejected)
                            << resp.diags.render();
                    }
                } else if (action < 9) {
                    // Swap an edited operator against variant v's
                    // build, if this service has served it already.
                    if (!svcc.hasBuild(keys[v]))
                        continue;
                    SwapRequest sw;
                    sw.opts = reqs[v].opts;
                    sw.baseBuild = keys[v];
                    sw.opName = "scale";
                    sw.graphText =
                        reqs[(v + 1) % kVariants].graphText;
                    CompileResponse resp = svcc.swap(sw);
                    if (resp.status == RespStatus::Ok) {
                        SwapBlob sb = SwapBlob::decode(resp.blob);
                        ASSERT_EQ(sb.op, "scale");
                        ASSERT_TRUE(sb.binding.hasFallback);
                    } else {
                        ASSERT_EQ(resp.status, RespStatus::Rejected)
                            << resp.diags.render();
                    }
                } else {
                    // Corrupt a random variant's store entry behind
                    // the store's back; checksums must catch it.
                    std::string path =
                        svcc.store().entryPath(keys[v]);
                    std::fstream f(path, std::ios::in |
                                             std::ios::out |
                                             std::ios::binary);
                    if (f.is_open()) {
                        f.seekp(40); // inside the payload
                        char c = 0x5a;
                        f.write(&c, 1);
                    }
                }
            }
        });
    }
    for (auto &t : pool)
        t.join();

    const ServiceStats &st = svcc.stats();
    EXPECT_EQ(st.submitted.load(),
              st.rejected.load() + st.coalesced.load() +
                  st.storeHits.load() + st.storeMisses.load())
        << "every request must be classified exactly once";
    EXPECT_GT(st.storeHits.load() + st.coalesced.load(), 0u);
    EXPECT_GT(svcc.store().stats().evictions.load(), 0u)
        << "the tiny budget must actually exercise eviction";
    EXPECT_LE(svcc.store().bytesStored(), cfg.storeBudgetBytes);

    std::error_code ec;
    fs::remove_all(dir, ec);
}

} // namespace
