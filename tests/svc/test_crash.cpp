/**
 * @file
 * Crash-safety tests: the FaultVfs fault kinds themselves, named
 * crash points (fork a child, let io_crash_point kill it, reopen the
 * store in the parent and check what survived), lru.txt damage
 * tolerance (truncated / duplicate / unknown-key / garbage lines,
 * mtime-based recency rebuild), ENOSPC degraded mode, put() failure
 * reporting, and the client-side resilience surface: ping, request
 * deadlines against a silent server, deterministic backoff, retry
 * through a daemon restart, and the idle-client watchdog.
 *
 * Crash tests use a plain fork(): each gtest case runs as its own
 * ctest process (gtest_discover_tests), so no other threads exist
 * when the child forks, and parent and child share the temp store
 * directory — exactly what reopening after a crash needs.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/io.h"
#include "fabric/device.h"
#include "ir/builder.h"
#include "svc/client.h"
#include "svc/server.h"
#include "svc/service.h"
#include "svc/store.h"

using namespace pld;
using namespace pld::svc;
namespace fs = std::filesystem;

namespace {

std::shared_ptr<Vfs>
faulty(const std::string &spec)
{
    return std::make_shared<FaultVfs>(systemVfs(),
                                      FaultPlan::parse(spec));
}

std::string
hexKey(uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

std::vector<uint8_t>
payloadFor(uint64_t key, size_t size)
{
    std::vector<uint8_t> p(size);
    for (size_t i = 0; i < size; ++i)
        p[i] = static_cast<uint8_t>((key * 31 + i * 7) & 0xff);
    return p;
}

/** Run @p fn in a forked child; return its exit code (-1 when it
 * died of a signal). A crash point inside fn _Exit(137)s the child;
 * a clean return exits 0. */
int
inChild(const std::function<void()> &fn)
{
    std::fflush(nullptr);
    pid_t pid = ::fork();
    if (pid == 0) {
        fn();
        std::_Exit(0);
    }
    int st = 0;
    ::waitpid(pid, &st, 0);
    return WIFEXITED(st) ? WEXITSTATUS(st) : -1;
}

class CrashTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/pld_crash_test_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir = tmpl;
    }

    void
    TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir, ec);
    }

    std::string dir;
};

// ---- FaultVfs fault kinds ----------------------------------------

TEST_F(CrashTest, ShortWritePersistsPrefixThenFails)
{
    auto vfs = faulty("io_short_write:f.bin*1");
    auto data = payloadFor(1, 100);
    std::string path = dir + "/f.bin";
    IoStatus st = vfs->writeFile(path, data.data(), data.size(),
                                 false);
    EXPECT_FALSE(st.ok());
    std::vector<uint8_t> got;
    ASSERT_TRUE(systemVfs()->readFile(path, &got).ok());
    EXPECT_EQ(got.size(), 50u); // the torn prefix is on disk

    // The spec heals after its count: the retry writes everything.
    ASSERT_TRUE(
        vfs->writeFile(path, data.data(), data.size(), false).ok());
    ASSERT_TRUE(systemVfs()->readFile(path, &got).ok());
    EXPECT_EQ(got, data);
}

TEST_F(CrashTest, EnospcFailsWithPrefixOnDisk)
{
    auto vfs = faulty("io_enospc:f.bin*1");
    auto data = payloadFor(2, 64);
    IoStatus st = vfs->writeFile(dir + "/f.bin", data.data(),
                                 data.size(), false);
    EXPECT_EQ(st.err, ENOSPC);
    std::vector<uint8_t> got;
    ASSERT_TRUE(systemVfs()->readFile(dir + "/f.bin", &got).ok());
    EXPECT_EQ(got.size(), 32u);
}

TEST_F(CrashTest, EioWritesNothing)
{
    auto vfs = faulty("io_eio:f.bin*1");
    auto data = payloadFor(3, 64);
    IoStatus st = vfs->writeFile(dir + "/f.bin", data.data(),
                                 data.size(), false);
    EXPECT_EQ(st.err, EIO);
    EXPECT_FALSE(fs::exists(dir + "/f.bin"));
}

TEST_F(CrashTest, TornRenameReportsOkButDestinationIsTorn)
{
    auto vfs = faulty("io_torn_rename:dst.bin*1");
    auto data = payloadFor(4, 80);
    ASSERT_TRUE(vfs->writeFile(dir + "/src.bin", data.data(),
                               data.size(), false)
                    .ok());
    IoStatus st = vfs->rename(dir + "/src.bin", dir + "/dst.bin");
    EXPECT_TRUE(st.ok()); // the lie is the point
    std::vector<uint8_t> got;
    ASSERT_TRUE(systemVfs()->readFile(dir + "/dst.bin", &got).ok());
    EXPECT_EQ(got.size(), 40u);
}

TEST_F(CrashTest, ArrivalOrdinalsCountPerSite)
{
    auto vfs = faulty("io_eio:a.bin*2");
    auto data = payloadFor(5, 16);
    auto write = [&](const char *name) {
        return vfs->writeFile(dir + "/" + name, data.data(),
                              data.size(), false);
    };
    EXPECT_EQ(write("a.bin").err, EIO); // arrival 0
    EXPECT_TRUE(write("b.bin").ok());   // different site, untouched
    EXPECT_EQ(write("a.bin").err, EIO); // arrival 1
    EXPECT_TRUE(write("a.bin").ok());   // arrival 2: healed
}

// ---- crash points ------------------------------------------------

TEST_F(CrashTest, UncountedCrashPointDiesOnFirstArrival)
{
    EXPECT_EQ(inChild([&] {
                  auto vfs = faulty("io_crash_point:site.x");
                  vfs->crashPoint("site.other"); // no match
                  vfs->crashPoint("site.x");
              }),
              FaultVfs::kCrashExitCode);
}

TEST_F(CrashTest, CountedCrashPointDiesOnExactlyNthArrival)
{
    // '*3' means "die on the third arrival" — the first two return.
    EXPECT_EQ(inChild([&] {
                  auto vfs = faulty("io_crash_point:site.x*3");
                  vfs->crashPoint("site.x");
                  vfs->crashPoint("site.x");
              }),
              0);
    EXPECT_EQ(inChild([&] {
                  auto vfs = faulty("io_crash_point:site.x*3");
                  vfs->crashPoint("site.x");
                  vfs->crashPoint("site.x");
                  vfs->crashPoint("site.x");
              }),
              FaultVfs::kCrashExitCode);
}

// ---- store crash recovery ----------------------------------------

TEST_F(CrashTest, CrashBeforeRenameQuarantinesTmp)
{
    EXPECT_EQ(inChild([&] {
                  ArtifactStore s(
                      dir, 1 << 20,
                      faulty("io_crash_point:store.put.tmp_written*1"));
                  s.put(1, payloadFor(1, 500));
              }),
              FaultVfs::kCrashExitCode);

    // The tmp was written but never renamed: recovery quarantines
    // it and the key misses (caller recompiles once).
    ArtifactStore s(dir, 1 << 20);
    EXPECT_FALSE(s.get(1).has_value());
    EXPECT_GE(s.stats().quarantined.load(), 1u);
    size_t quarantined = 0;
    for (const auto &e : fs::directory_iterator(dir + "/quarantine"))
        quarantined += e.is_regular_file() ? 1 : 0;
    EXPECT_GE(quarantined, 1u);
    for (const auto &e : fs::directory_iterator(dir))
        EXPECT_FALSE(e.path().string().ends_with(".tmp"));
}

TEST_F(CrashTest, CrashAfterRenameKeepsEntryDurable)
{
    auto p = payloadFor(2, 700);
    EXPECT_EQ(
        inChild([&] {
            ArtifactStore s(
                dir, 1 << 20,
                faulty("io_crash_point:store.put.entry_renamed*1"));
            s.put(2, p);
        }),
        FaultVfs::kCrashExitCode);

    // Renamed + fsynced before the crash: the entry survives even
    // though lru.txt was never written; recency is rebuilt.
    ArtifactStore s(dir, 1 << 20);
    auto got = s.get(2);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, p);
    EXPECT_GE(s.stats().recencyRebuilt.load(), 1u);
}

TEST_F(CrashTest, CrashAtIndexTmpQuarantinesIndexTmp)
{
    auto p = payloadFor(3, 300);
    EXPECT_EQ(
        inChild([&] {
            ArtifactStore s(
                dir, 1 << 20,
                faulty("io_crash_point:store.index.tmp_written*1"));
            s.put(3, p);
        }),
        FaultVfs::kCrashExitCode);

    ArtifactStore s(dir, 1 << 20);
    auto got = s.get(3);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, p);
    EXPECT_GE(s.stats().quarantined.load(), 1u); // lru.txt.tmp
    EXPECT_FALSE(fs::exists(dir + "/lru.txt.tmp"));
}

TEST_F(CrashTest, CrashMidCorruptEvictionNeverResurrectsEntry)
{
    EXPECT_EQ(
        inChild([&] {
            ArtifactStore s(
                dir, 1 << 20,
                faulty("io_crash_point:store.get.evicted*1"));
            s.put(7, payloadFor(7, 400));
            // Flip a payload byte on disk, then get(): checksum
            // mismatch -> evict -> crash point.
            std::fstream f(s.entryPath(7),
                           std::ios::in | std::ios::out |
                               std::ios::binary);
            f.seekp(40);
            f.put('!');
            f.close();
            s.get(7);
        }),
        FaultVfs::kCrashExitCode);

    // The corrupt file was unlinked before the crash point; reopen
    // must miss, never serve the damaged bytes.
    ArtifactStore s(dir, 1 << 20);
    EXPECT_FALSE(s.get(7).has_value());
    EXPECT_EQ(s.stats().corrupt.load(), 0u);
}

// ---- put() failure reporting & degraded mode ---------------------

TEST_F(CrashTest, EnospcPutReportsFailureAndDegradesUntilSuccess)
{
    ArtifactStore s(dir, 1 << 20,
                    faulty("io_enospc:" + hexKey(42) + ".art.tmp*1"));
    auto p = payloadFor(42, 256);
    EXPECT_FALSE(s.put(42, p));
    EXPECT_TRUE(s.degraded());
    EXPECT_EQ(s.stats().ioErrors.load(), 1u);
    EXPECT_FALSE(s.contains(42));

    // The disk "clears"; the next put lands and lifts degraded mode.
    EXPECT_TRUE(s.put(42, p));
    EXPECT_FALSE(s.degraded());
    auto got = s.get(42);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, p);
}

TEST_F(CrashTest, EntryRenameFailureFailsThePut)
{
    ArtifactStore s(dir, 1 << 20,
                    faulty("io_eio:" + hexKey(9) + ".art*1"));
    EXPECT_FALSE(s.put(9, payloadFor(9, 128)));
    EXPECT_EQ(s.stats().ioErrors.load(), 1u);
    EXPECT_FALSE(s.contains(9));
    EXPECT_TRUE(s.put(9, payloadFor(9, 128)));
}

TEST_F(CrashTest, IndexRenameFailureStillStoresTheEntry)
{
    // Arrival 0 of (io_eio, lru.txt) is the open-time index read
    // (tolerated as "no index"); arrival 1 is the first index
    // rename. The entry itself must still be durable: only recency
    // is at stake, and it rebuilds on reopen.
    auto p = payloadFor(5, 200);
    {
        ArtifactStore s(dir, 1 << 20, faulty("io_eio:lru.txt*2"));
        EXPECT_TRUE(s.put(5, p));
        EXPECT_GE(s.stats().ioErrors.load(), 1u);
        EXPECT_TRUE(s.contains(5));
    }
    ArtifactStore s(dir, 1 << 20);
    auto got = s.get(5);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, p);
}

// ---- lru.txt damage tolerance (satellite S3) ---------------------

TEST_F(CrashTest, DamagedIndexLinesAreSkippedPerLine)
{
    {
        ArtifactStore s(dir, 1 << 20);
        s.put(1, payloadFor(1, 100));
        s.put(2, payloadFor(2, 100));
        s.put(3, payloadFor(3, 100));
    }
    // A crash-torn index: one good line, a truncated line, garbage,
    // another good line — and no line at all for key 2.
    std::ofstream idx(dir + "/lru.txt", std::ios::trunc);
    idx << hexKey(1) << " 10\n"
        << "deadbe\n"
        << "not an index line at all\n"
        << hexKey(3) << " 20\n";
    idx.close();

    ArtifactStore s(dir, 1 << 20);
    EXPECT_TRUE(s.get(1).has_value());
    EXPECT_TRUE(s.get(2).has_value());
    EXPECT_TRUE(s.get(3).has_value());
    EXPECT_EQ(s.stats().recencyRebuilt.load(), 1u); // key 2 only
}

TEST_F(CrashTest, DuplicateIndexKeyLastWriteWins)
{
    {
        ArtifactStore s(dir, 1 << 20);
        s.put(1, payloadFor(1, 100));
        s.put(2, payloadFor(2, 100));
    }
    std::ofstream idx(dir + "/lru.txt", std::ios::trunc);
    idx << hexKey(1) << " 5\n"
        << hexKey(2) << " 6\n"
        << hexKey(1) << " 7\n"; // key 1 re-touched: most recent
    idx.close();

    ArtifactStore s(dir, 1 << 20);
    EXPECT_EQ(s.keysByRecency(),
              (std::vector<uint64_t>{2, 1}));
}

TEST_F(CrashTest, UnknownIndexKeyIgnored)
{
    {
        ArtifactStore s(dir, 1 << 20);
        s.put(1, payloadFor(1, 100));
    }
    std::ofstream idx(dir + "/lru.txt", std::ios::trunc);
    idx << hexKey(0xdead) << " 1\n" << hexKey(1) << " 2\n";
    idx.close();

    ArtifactStore s(dir, 1 << 20);
    EXPECT_EQ(s.entryCount(), 1u);
    EXPECT_EQ(s.stats().recencyRebuilt.load(), 0u);
    EXPECT_FALSE(s.get(0xdead).has_value());
    EXPECT_TRUE(s.get(1).has_value());
}

TEST_F(CrashTest, MissingIndexRebuildsRecencyFromMtimes)
{
    {
        ArtifactStore s(dir, 1 << 20);
        s.put(1, payloadFor(1, 100));
        s.put(2, payloadFor(2, 100));
    }
    fs::remove(dir + "/lru.txt");
    // Key 2's file is made the older one: it must rank least
    // recent despite being put() last.
    auto now = fs::file_time_type::clock::now();
    fs::last_write_time(dir + "/" + hexKey(2) + ".art",
                        now - std::chrono::hours(2));
    fs::last_write_time(dir + "/" + hexKey(1) + ".art",
                        now - std::chrono::hours(1));

    ArtifactStore s(dir, 1 << 20);
    EXPECT_EQ(s.stats().recencyRebuilt.load(), 2u);
    EXPECT_EQ(s.keysByRecency(),
              (std::vector<uint64_t>{2, 1}));
}

// ---- client resilience: ping, deadlines, backoff, retry ----------

constexpr ir::Type kFx = ir::Type::fx(32, 17);

ir::Graph
makePipeline(double factor)
{
    ir::OpBuilder s("scale");
    auto sin = s.input("Input_1");
    auto sout = s.output("mid");
    auto sx = s.var("x", kFx);
    s.pragma(ir::Target::HW);
    s.forLoop(0, 16, [&](ir::Ex) {
        s.set(sx, s.read(sin).bitcast(kFx));
        s.write(sout, (ir::Ex(sx) * ir::litF(factor, kFx)).cast(kFx));
    });

    ir::OpBuilder o("offset");
    auto oin = o.input("mid");
    auto oout = o.output("Output_1");
    auto ox = o.var("x", kFx);
    o.pragma(ir::Target::HW);
    o.forLoop(0, 16, [&](ir::Ex) {
        o.set(ox, o.read(oin).bitcast(kFx));
        o.write(oout, (ir::Ex(ox) + ir::litF(-2.0, kFx)).cast(kFx));
    });

    ir::GraphBuilder gb("crash_app");
    auto in = gb.extIn("Input_1");
    auto out = gb.extOut("Output_1");
    auto mid = gb.wire();
    gb.inst(s.finish(), {in}, {mid});
    gb.inst(o.finish(), {mid}, {out});
    return gb.finish();
}

CompileRequest
makeRequest(double factor)
{
    CompileRequest req;
    req.opts.level = 1;
    req.graphText = encodeGraphText(makePipeline(factor));
    return req;
}

/** An AF_UNIX listener that accepts and reads but never replies —
 * what a wedged daemon looks like from the client side. */
class SilentServer
{
  public:
    explicit SilentServer(const std::string &path) : path_(path)
    {
        lfd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      path.c_str());
        ::bind(lfd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr));
        ::listen(lfd_, 4);
        th_ = std::thread([this] {
            for (;;) {
                int fd = ::accept(lfd_, nullptr, nullptr);
                if (fd < 0)
                    return;
                conns_.push_back(fd); // hold open, never answer
            }
        });
    }

    ~SilentServer()
    {
        ::shutdown(lfd_, SHUT_RDWR);
        ::close(lfd_);
        th_.join();
        for (int fd : conns_)
            ::close(fd);
        ::unlink(path_.c_str());
    }

  private:
    std::string path_;
    int lfd_ = -1;
    std::thread th_;
    std::vector<int> conns_;
};

class CrashDaemonTest : public CrashTest
{
  protected:
    void
    SetUp() override
    {
        CrashTest::SetUp();
        dev = fabric::makeU50();
        cfg.storeDir = dir + "/store";
    }

    fabric::Device dev;
    ServiceConfig cfg;
};

TEST_F(CrashDaemonTest, PingRoundTrip)
{
    CompileService service(dev, cfg);
    DaemonServer server(service, dir + "/pldd.sock");
    server.start();

    Client c(server.socketPath());
    ASSERT_TRUE(c.connect());
    EXPECT_TRUE(c.ping(0xabcdef));
    EXPECT_TRUE(c.ping(1)); // connection stays usable
    server.stop();

    Client down(dir + "/nobody.sock");
    EXPECT_FALSE(down.connect());
    EXPECT_FALSE(down.ping(2));
}

TEST_F(CrashDaemonTest, DeadlineExpiresAgainstSilentServer)
{
    SilentServer silent(dir + "/silent.sock");
    Client c(dir + "/silent.sock");
    c.setDeadlineMs(150);
    ASSERT_TRUE(c.connect());

    auto t0 = std::chrono::steady_clock::now();
    try {
        c.stats();
        FAIL() << "stats() should have timed out";
    } catch (const CompileError &e) {
        EXPECT_EQ(e.diag().code, CompileCode::DeadlineExceeded);
        EXPECT_TRUE(e.diag().retriable);
    }
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    EXPECT_LT(ms, 5000); // a deadline, not a hang
}

TEST_F(CrashDaemonTest, BackoffIsDeterministicBoundedMonotone)
{
    RetryPolicy p;
    for (int k = 0; k < 10; ++k) {
        int a = Client::backoffMs(p, k);
        EXPECT_EQ(a, Client::backoffMs(p, k)); // pure function
        EXPECT_GE(a, 1);
        EXPECT_LE(a, p.maxMs);
        if (k > 0 && Client::backoffMs(p, k - 1) * 2 <= p.maxMs) {
            EXPECT_GE(a, Client::backoffMs(p, k - 1));
        }
    }
    EXPECT_LE(Client::backoffMs(p, 30), p.maxMs); // no overflow

    RetryPolicy q = p;
    q.seed = 99;
    int diffs = 0;
    for (int k = 0; k < 10; ++k)
        diffs += Client::backoffMs(q, k) != Client::backoffMs(p, k);
    EXPECT_GT(diffs, 0); // the jitter actually depends on the seed
}

TEST_F(CrashDaemonTest, RetryConnectsThroughLateDaemonStart)
{
    CompileService service(dev, cfg);
    DaemonServer server(service, dir + "/pldd.sock");
    std::thread starter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        server.start();
    });

    Client c(dir + "/pldd.sock");
    RetryPolicy policy;
    policy.maxAttempts = 12;
    policy.baseMs = 25;
    policy.maxMs = 250;
    auto resp = c.compileWithRetry(makeRequest(1.5), policy);
    EXPECT_EQ(resp.status, RespStatus::Ok);
    EXPECT_FALSE(resp.blob.empty());

    starter.join();
    server.stop();
}

TEST_F(CrashDaemonTest, IdleClientIsDroppedButServerStaysUp)
{
    CompileService service(dev, cfg);
    DaemonServer server(service, dir + "/pldd.sock",
                        /*idle_timeout_ms=*/150);
    server.start();

    Client idle(server.socketPath());
    ASSERT_TRUE(idle.connect());
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    // The watchdog hung up on us; the next round-trip fails as a
    // retriable transport error, not a hang.
    try {
        idle.stats();
        FAIL() << "idle connection should have been dropped";
    } catch (const CompileError &e) {
        EXPECT_TRUE(e.diag().retriable);
    }

    Client fresh(server.socketPath());
    ASSERT_TRUE(fresh.connect());
    EXPECT_TRUE(fresh.ping(7));
    server.stop();
}

} // namespace
