#include <gtest/gtest.h>

#include "common/hash.h"

using pld::Hasher;

TEST(Hash, DeterministicAndOrderSensitive)
{
    Hasher a, b, c;
    a.str("foo");
    a.str("bar");
    b.str("foo");
    b.str("bar");
    c.str("bar");
    c.str("foo");
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_NE(a.digest(), c.digest());
}

TEST(Hash, LengthPrefixPreventsConcatCollision)
{
    Hasher a, b;
    a.str("ab");
    a.str("c");
    b.str("a");
    b.str("bc");
    EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, IntegersMix)
{
    Hasher a, b;
    a.u64(1);
    b.u64(2);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, OneShotHelper)
{
    EXPECT_EQ(pld::hashString("x"), pld::hashString("x"));
    EXPECT_NE(pld::hashString("x"), pld::hashString("y"));
}
