#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/thread_pool.h"

using pld::ThreadPool;

TEST(ThreadPool, RunsAllJobs)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { count.fetch_add(1); });
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ParallelismIsReal)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::atomic<int> concurrent{0};
    std::atomic<int> peak{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&] {
            int c = concurrent.fetch_add(1) + 1;
            int p = peak.load();
            while (c > p && !peak.compare_exchange_weak(p, c)) {}
            // Sleep so jobs necessarily overlap across 4 workers.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            concurrent.fetch_sub(1);
        });
    }
    pool.wait();
    EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPool, EmptyWaitReturns)
{
    ThreadPool pool(2);
    pool.wait(); // must not hang
    SUCCEED();
}
