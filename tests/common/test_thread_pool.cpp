#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/thread_pool.h"

using pld::ThreadPool;

TEST(ThreadPool, RunsAllJobs)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { count.fetch_add(1); });
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ParallelismIsReal)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::atomic<int> concurrent{0};
    std::atomic<int> peak{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&] {
            int c = concurrent.fetch_add(1) + 1;
            int p = peak.load();
            while (c > p && !peak.compare_exchange_weak(p, c)) {}
            // Sleep so jobs necessarily overlap across 4 workers.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            concurrent.fetch_sub(1);
        });
    }
    pool.wait();
    EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPool, EmptyWaitReturns)
{
    ThreadPool pool(2);
    pool.wait(); // must not hang
    pool.wait(); // and must stay reusable with nothing queued
    SUCCEED();
}

TEST(ThreadPool, SubmitFromWorker)
{
    // Nested parallelism: a job may fan out further jobs into the
    // same pool; wait() must cover work submitted by workers.
    ThreadPool pool(3);
    std::atomic<int> count{0};
    pool.submit([&] {
        for (int i = 0; i < 16; ++i)
            pool.submit([&] { count.fetch_add(1); });
        count.fetch_add(1);
    });
    pool.wait();
    EXPECT_EQ(count.load(), 17);
}

TEST(ThreadPool, DestructionRunsQueuedWork)
{
    // The pool drains its queue before joining: jobs still queued at
    // destruction run, none are dropped.
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        pool.submit([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            count.fetch_add(1);
        });
        for (int i = 0; i < 40; ++i)
            pool.submit([&] { count.fetch_add(1); });
        // No wait(): destructor must finish the backlog.
    }
    EXPECT_EQ(count.load(), 41);
}

TEST(ThreadPool, ZeroWorkersFallsBackToHardware)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.workerCount(), 1u);
    std::atomic<int> count{0};
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadBudget, CappedAcquireStaysWithinBudget)
{
    using pld::ThreadBudget;
    unsigned avail = ThreadBudget::available();
    unsigned got = ThreadBudget::acquire(avail + 7);
    EXPECT_EQ(got, avail);
    EXPECT_EQ(ThreadBudget::available(), 0u);
    EXPECT_EQ(ThreadBudget::acquire(1), 0u);
    ThreadBudget::release(got);
    EXPECT_EQ(ThreadBudget::available(), avail);
}

TEST(ThreadBudget, ExactAcquireGrantsEvenWhenExhausted)
{
    using pld::BudgetLease;
    using pld::ThreadBudget;
    unsigned avail = ThreadBudget::available();
    {
        BudgetLease all(avail);
        EXPECT_EQ(all.count(), avail);
        // Explicit thread requests must be honoured regardless.
        BudgetLease exact(3, /*exact=*/true);
        EXPECT_EQ(exact.count(), 3u);
        EXPECT_EQ(ThreadBudget::available(), 0u);
        // Auto requests degrade to serial instead.
        BudgetLease capped(2);
        EXPECT_EQ(capped.count(), 0u);
    }
    EXPECT_EQ(ThreadBudget::available(), avail);
}
