#include <gtest/gtest.h>

#include "common/table.h"

using pld::Table;

TEST(Table, AlignsColumns)
{
    Table t("demo");
    t.row("name", "value");
    t.row("x", 12);
    t.row("longer", 3.5);
    std::string s = t.toString();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("12"), std::string::npos);
    EXPECT_NE(s.find("3.50"), std::string::npos);
}

TEST(Table, HeaderRulePresent)
{
    Table t;
    t.row("a", "b");
    t.row("1", "2");
    std::string s = t.toString();
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, RaggedRowsTolerated)
{
    Table t;
    t.row("a");
    t.row("b", "c", "d");
    EXPECT_FALSE(t.toString().empty());
}

TEST(FmtSeconds, PicksUnits)
{
    EXPECT_EQ(pld::fmtSeconds(2.5), "2.50s");
    EXPECT_EQ(pld::fmtSeconds(0.0021), "2.1ms");
    EXPECT_EQ(pld::fmtSeconds(0.0000005), "0.5us");
}

TEST(FmtDouble, RespectsDigits)
{
    EXPECT_EQ(pld::fmtDouble(1.23456, 3), "1.235");
    EXPECT_EQ(pld::fmtDouble(2.0, 0), "2");
}
