#include <gtest/gtest.h>

#include "common/rng.h"

using pld::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(9);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[r.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool lo = false, hi = false;
    for (int i = 0; i < 5000; ++i) {
        int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        lo |= (v == -3);
        hi |= (v == 3);
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng r(17);
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = r.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}
