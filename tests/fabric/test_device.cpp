#include <gtest/gtest.h>

#include "fabric/device.h"

using namespace pld::fabric;

namespace {

const Device &
device()
{
    static Device d = makeU50();
    return d;
}

} // namespace

TEST(Device, HasTwentyTwoPages)
{
    EXPECT_EQ(device().pages.size(), 22u);
}

TEST(Device, PagesAreDisjoint)
{
    const Device &d = device();
    for (size_t i = 0; i < d.pages.size(); ++i) {
        for (size_t j = i + 1; j < d.pages.size(); ++j) {
            const Rect &a = d.pages[i].rect;
            const Rect &b = d.pages[j].rect;
            bool overlap = a.col0 < b.col0 + b.w &&
                           b.col0 < a.col0 + a.w &&
                           a.row0 < b.row0 + b.h &&
                           b.row0 < a.row0 + a.h;
            EXPECT_FALSE(overlap) << "pages " << i << "," << j;
        }
    }
}

TEST(Device, PagesAvoidShellAndSpine)
{
    const Device &d = device();
    for (const auto &p : d.pages) {
        for (int r = p.rect.row0; r < p.rect.row0 + p.rect.h; ++r) {
            for (int c = p.rect.col0; c < p.rect.col0 + p.rect.w;
                 ++c) {
                TileKind k = d.at(c, r);
                ASSERT_NE(k, TileKind::Shell);
                ASSERT_NE(k, TileKind::Spine);
            }
        }
    }
}

TEST(Device, PageSizeNearPaperTarget)
{
    // Paper Sec 4.1 chooses ~18,000-LUT pages (Table 1: 17.5k-21.3k).
    for (const auto &p : device().pages) {
        EXPECT_GE(p.res.luts, 15000) << "page " << p.id;
        EXPECT_LE(p.res.luts, 23000) << "page " << p.id;
        EXPECT_EQ(p.res.ffs, p.res.luts * 2);
        EXPECT_GT(p.res.bram18, 0);
        EXPECT_GT(p.res.dsps, 0);
    }
}

TEST(Device, HeterogeneousPageTypes)
{
    const Device &d = device();
    // Table 1 has 4 page types; our column pattern yields a small
    // number of distinct signatures (>1 shows heterogeneity).
    EXPECT_GE(d.pageTypes.size(), 2u);
    EXPECT_LE(d.pageTypes.size(), 6u);
    int total = 0;
    for (const auto &t : d.pageTypes)
        total += t.count;
    EXPECT_EQ(total, 22);
    // Types sorted by descending LUTs.
    for (size_t i = 1; i < d.pageTypes.size(); ++i)
        EXPECT_GE(d.pageTypes[i - 1].res.luts,
                  d.pageTypes[i].res.luts);
}

TEST(Device, UserResourcesNearU50Scale)
{
    // U50 exposes 751,793 LUTs total; our 22 pages should land within
    // the same order (the paper's pages likewise don't cover all of
    // the device: shell + network take the rest).
    ResourceCount u = device().userResources();
    EXPECT_GT(u.luts, 350000);
    EXPECT_LT(u.luts, 760000);
}

TEST(Device, SlrSplit)
{
    const Device &d = device();
    EXPECT_EQ(d.slrOf(0), 0);
    EXPECT_EQ(d.slrOf(d.slrBoundary - 1), 0);
    EXPECT_EQ(d.slrOf(d.slrBoundary), 1);
    EXPECT_EQ(d.slrOf(d.height - 1), 1);
    int pages_slr0 = 0, pages_slr1 = 0;
    for (const auto &p : d.pages) {
        if (d.slrOf(p.rect.row0) == 0)
            ++pages_slr0;
        else
            ++pages_slr1;
    }
    EXPECT_EQ(pages_slr0, 12);
    EXPECT_EQ(pages_slr1, 10);
}

TEST(Device, SitesInRegionMatchResourceCounts)
{
    const Device &d = device();
    const PageInfo &p = d.pages[0];
    auto clbs = d.sitesIn(p.rect, SiteKind::Clb);
    auto brams = d.sitesIn(p.rect, SiteKind::Bram);
    auto dsps = d.sitesIn(p.rect, SiteKind::Dsp);
    EXPECT_EQ(static_cast<int64_t>(clbs.size()) * 8, p.res.luts);
    EXPECT_EQ(static_cast<int64_t>(brams.size()), p.res.bram18);
    EXPECT_EQ(static_cast<int64_t>(dsps.size()), p.res.dsps);
}

TEST(Device, PageAtLookup)
{
    const Device &d = device();
    const PageInfo &p = d.pages[3];
    EXPECT_EQ(d.pageAt(p.rect.col0, p.rect.row0), p.id);
    EXPECT_EQ(d.pageAt(d.staticShell.col0, 0), -1);
}

TEST(Device, FloorplanRenders)
{
    std::string fp = device().renderFloorplan();
    EXPECT_NE(fp.find("SLR boundary"), std::string::npos);
    EXPECT_NE(fp.find('S'), std::string::npos);
    EXPECT_NE(fp.find('N'), std::string::npos);
}
