/**
 * Fault-injection tests for the fault-tolerant compile pipeline:
 * every recovery path the compile manager owns — the per-page retry
 * ladder (reroute, fresh seed, page promotion, softcore fallback),
 * cache corruption detection, and the failure-sentinel protocol —
 * is forced deterministically via FaultPlan and checked end-to-end,
 * including golden-model equivalence of a degraded Rosetta build.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/fault.h"
#include "fabric/device.h"
#include "ir/builder.h"
#include "obs/trace.h"
#include "pld/compiler.h"
#include "rosetta/benchmark.h"
#include "sys/system.h"

using namespace pld;
using namespace pld::ir;
using namespace pld::flow;

namespace {

const fabric::Device &
device()
{
    static fabric::Device d = fabric::makeU50();
    return d;
}

OperatorFn
makeScale(const std::string &name, double k, int n)
{
    constexpr Type fx = Type::fx(32, 17);
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", fx);
    b.forLoop(0, n, [&](Ex) {
        b.set(x, b.read(in).bitcast(fx));
        b.write(out, (Ex(x) * litF(k, fx)).cast(fx));
    });
    return b.finish();
}

/**
 * Two-operator app. "shared" is pinned to page 1 (a type with fewer
 * LUTs than the type-0 pages), so a strictly larger promotion target
 * exists and the full five-rung ladder is reachable.
 */
Graph
makeApp(double second_k = 0.5)
{
    GraphBuilder gb("app");
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto mid = gb.wire();
    OperatorFn shared = makeScale("shared", 2.0, 8);
    shared.pragma.pageNum = 1;
    gb.inst(shared, {in}, {mid});
    gb.inst(makeScale("tail", second_k, 8), {mid}, {out});
    return gb.finish();
}

CompileOptions
faultyOpts(const std::string &spec)
{
    CompileOptions o;
    o.effort = 0.1;
    o.parallelJobs = 2;
    if (!spec.empty())
        o.faults = FaultPlan::parse(spec);
    return o;
}

const OperatorOutcome &
outcomeOf(const AppBuild &b, const std::string &op)
{
    for (const auto &o : b.report.ops) {
        if (o.op == op)
            return o;
    }
    ADD_FAILURE() << "no outcome for operator " << op;
    static OperatorOutcome none;
    return none;
}

} // namespace

// -------- plan parsing and the decision function --------------------

TEST(Fault, PlanParsing)
{
    FaultPlan p = FaultPlan::parse(
        "route_fail:flow_calc*2;timing_miss:*@0.25;throw:s1");
    ASSERT_EQ(p.specs.size(), 3u);
    EXPECT_EQ(p.specs[0].kind, FaultKind::RouteFail);
    EXPECT_EQ(p.specs[0].op, "flow_calc");
    EXPECT_EQ(p.specs[0].count, 2);
    EXPECT_EQ(p.specs[1].kind, FaultKind::TimingMiss);
    EXPECT_EQ(p.specs[1].op, "*");
    EXPECT_DOUBLE_EQ(p.specs[1].probability, 0.25);
    EXPECT_EQ(p.specs[2].kind, FaultKind::CompileThrow);
    EXPECT_EQ(p.specs[2].op, "s1");

    FaultInjector inj(p);
    // Counted spec: first two attempts only.
    EXPECT_TRUE(inj.fires(FaultKind::RouteFail, "flow_calc", 0));
    EXPECT_TRUE(inj.fires(FaultKind::RouteFail, "flow_calc", 1));
    EXPECT_FALSE(inj.fires(FaultKind::RouteFail, "flow_calc", 2));
    EXPECT_FALSE(inj.fires(FaultKind::RouteFail, "other", 0));
    // Uncounted spec: every attempt.
    EXPECT_TRUE(inj.fires(FaultKind::CompileThrow, "s1", 0));
    EXPECT_TRUE(inj.fires(FaultKind::CompileThrow, "s1", 1000));
    // Probabilistic spec: a pure function of the site, so the same
    // (op, attempt) always draws the same answer.
    int fired = 0;
    for (int a = 0; a < 200; ++a) {
        bool f = inj.fires(FaultKind::TimingMiss, "x", a);
        EXPECT_EQ(f, inj.fires(FaultKind::TimingMiss, "x", a));
        fired += f;
    }
    EXPECT_GT(fired, 20) << "a 25% coin should fire sometimes";
    EXPECT_LT(fired, 120) << "a 25% coin should not always fire";
}

TEST(Fault, ParseAcceptsRuntimeKindsAndWildcardCounts)
{
    FaultPlan p = FaultPlan::parse(
        "config_drop:a1*1;config_corrupt:*;page_hang:**3;"
        "dma_stall:x@0.5");
    ASSERT_EQ(p.specs.size(), 4u);
    EXPECT_EQ(p.specs[0].kind, FaultKind::ConfigDrop);
    EXPECT_EQ(p.specs[1].kind, FaultKind::ConfigCorrupt);
    EXPECT_EQ(p.specs[1].op, "*");
    // "**3" is the wildcard op with a count: the LAST '*' separates.
    EXPECT_EQ(p.specs[2].kind, FaultKind::PageHang);
    EXPECT_EQ(p.specs[2].op, "*");
    EXPECT_EQ(p.specs[2].count, 3);
    EXPECT_EQ(p.specs[3].kind, FaultKind::DmaStall);
    EXPECT_DOUBLE_EQ(p.specs[3].probability, 0.5);
}

TEST(Fault, TenantScopedSitesParseAndMatch)
{
    // Multi-tenant fault scoping: "tenant/op" sites with per-component
    // wildcards. Scoped patterns must never leak into unscoped sites
    // (and vice versa) — only a bare "*" crosses the scope boundary.
    FaultPlan p = FaultPlan::parse(
        "page_hang:t1/fc;config_corrupt:*/fc*2;dma_stall:t2/*");
    ASSERT_EQ(p.specs.size(), 3u);
    EXPECT_EQ(p.specs[0].op, "t1/fc");
    EXPECT_EQ(p.specs[1].op, "*/fc");
    EXPECT_EQ(p.specs[1].count, 2);
    EXPECT_EQ(p.specs[2].op, "t2/*");

    EXPECT_TRUE(faultSiteMatches("t1/fc", "t1/fc"));
    EXPECT_FALSE(faultSiteMatches("t1/fc", "t2/fc"));
    EXPECT_FALSE(faultSiteMatches("t1/fc", "fc"));
    EXPECT_TRUE(faultSiteMatches("*/fc", "t9/fc"));
    EXPECT_FALSE(faultSiteMatches("*/fc", "fc"));
    EXPECT_TRUE(faultSiteMatches("t2/*", "t2/anything"));
    EXPECT_FALSE(faultSiteMatches("t2/*", "t1/anything"));
    EXPECT_TRUE(faultSiteMatches("*", "t1/fc"));
    EXPECT_TRUE(faultSiteMatches("*", "fc"));
    // An unscoped literal never matches a scoped site: a legacy
    // single-tenant spec cannot accidentally target tenant pages.
    EXPECT_FALSE(faultSiteMatches("fc", "t1/fc"));

    // The injector honors scoping end to end.
    FaultPlan hang = FaultPlan::parse("page_hang:t1/fc");
    FaultInjector inj(hang);
    EXPECT_TRUE(inj.fires(FaultKind::PageHang, "t1/fc", 0, 0));
    EXPECT_FALSE(inj.fires(FaultKind::PageHang, "t2/fc", 0, 0));
    EXPECT_FALSE(inj.fires(FaultKind::PageHang, "fc", 0, 0));
}

TEST(Fault, ParseRejectsMalformedSpecsWithStructuredDiagnostic)
{
    // A malformed PLD_FAULT must fail loudly with a Diagnostic that
    // names the offending entry and its offset — never be silently
    // ignored (a typo'd fault plan that injects nothing would make a
    // "fault test passed" meaningless).
    auto expect_bad = [](const std::string &spec,
                         const std::string &needle) {
        try {
            FaultPlan::parse(spec);
            ADD_FAILURE() << "spec '" << spec << "' parsed";
        } catch (const CompileError &e) {
            const Diagnostic &d = e.diag();
            EXPECT_EQ(d.code, CompileCode::FaultSpecInvalid);
            EXPECT_EQ(d.stage, CompileStage::Fault);
            EXPECT_EQ(d.severity, DiagSeverity::Error);
            EXPECT_NE(d.detail.find(needle), std::string::npos)
                << "spec '" << spec << "': detail was: " << d.detail;
            EXPECT_NE(d.detail.find("offset"), std::string::npos);
        }
    };
    expect_bad("route_fail", "missing ':'");
    expect_bad("bogus_kind:x", "unknown fault kind 'bogus_kind'");
    expect_bad("route_fail:", "missing operator name");
    expect_bad("route_fail:x*", "malformed count");
    expect_bad("route_fail:x*abc", "malformed count");
    expect_bad("route_fail:x*0", "out of range");
    expect_bad("route_fail:x*-3", "malformed count");
    expect_bad("route_fail:x@", "empty probability");
    expect_bad("route_fail:x@zzz", "malformed probability");
    expect_bad("route_fail:x@0", "out of (0,1]");
    expect_bad("route_fail:x@1.5", "out of (0,1]");
    expect_bad("route_fail:a*b*2", "must be names or a bare '*'");
    expect_bad("route_fail:t1/a/b", "more than one '/'");
    expect_bad("route_fail:t*x/op*2", "must be names or a bare '*'");

    // The offset names the bad entry, not the start of the string.
    try {
        FaultPlan::parse("throw:ok;bogus:x");
        ADD_FAILURE() << "second entry should have failed";
    } catch (const CompileError &e) {
        EXPECT_NE(e.diag().detail.find("offset 9"), std::string::npos)
            << e.diag().detail;
        EXPECT_NE(e.diag().detail.find("'bogus:x'"),
                  std::string::npos);
    }
}

// -------- the retry ladder ------------------------------------------

TEST(Fault, RouteFailLadderEndsInSoftcoreFallback)
{
    // Routing can never succeed for "shared": the ladder must climb
    // all four hardware rungs and land on the softcore (mixed mode).
    PldCompiler pc(device(), faultyOpts("route_fail:shared"));
    AppBuild b = pc.build(makeApp(), OptLevel::O1);

    const OperatorOutcome &oc = outcomeOf(b, "shared");
    EXPECT_TRUE(oc.degraded);
    EXPECT_FALSE(oc.failed);
    EXPECT_EQ(oc.finalCode, CompileCode::Ok);
    ASSERT_EQ(oc.attempts.size(), 5u);
    EXPECT_EQ(oc.attempts[0].step, LadderStep::Initial);
    EXPECT_EQ(oc.attempts[1].step, LadderStep::EscalateEffort);
    EXPECT_EQ(oc.attempts[2].step, LadderStep::FreshSeed);
    EXPECT_EQ(oc.attempts[3].step, LadderStep::PromotePage);
    EXPECT_EQ(oc.attempts[4].step, LadderStep::SoftcoreFallback);
    for (int a = 0; a < 4; ++a)
        EXPECT_EQ(oc.attempts[a].outcome,
                  CompileCode::RouteInfeasible)
            << "attempt " << a;
    EXPECT_EQ(oc.attempts[4].outcome, CompileCode::Ok);
    // The ladder really varied its knobs.
    EXPECT_GT(oc.attempts[1].effort, oc.attempts[0].effort);
    EXPECT_GT(oc.attempts[1].routeIters, oc.attempts[0].routeIters);
    EXPECT_NE(oc.attempts[2].seed, oc.attempts[1].seed);
    EXPECT_NE(oc.attempts[3].page, oc.attempts[0].page);

    // The degraded operator runs on its page's softcore; the rest of
    // the app stays on hardware.
    ASSERT_EQ(b.bindings.size(), 2u);
    EXPECT_EQ(b.bindings[0].impl, sys::PageImpl::Softcore);
    EXPECT_EQ(b.bindings[1].impl, sys::PageImpl::Hw);
    EXPECT_EQ(b.report.degradedCount(), 1);
    EXPECT_TRUE(b.report.allOk())
        << "a degraded build still completes";
    std::string rendered = b.report.render();
    EXPECT_NE(rendered.find("shared"), std::string::npos);
    EXPECT_NE(rendered.find("softcore"), std::string::npos);

    // Same seed + same faults => bit-for-bit identical ladder.
    PldCompiler pc2(device(), faultyOpts("route_fail:shared"));
    AppBuild b2 = pc2.build(makeApp(), OptLevel::O1);
    EXPECT_EQ(b2.report.render(), rendered);
}

TEST(Fault, RouteFailRecoversViaReroute)
{
    // Only the first attempt fails: the escalate-effort rung (more
    // negotiation iterations, higher effort) must succeed and the
    // operator must stay on hardware.
    PldCompiler pc(device(), faultyOpts("route_fail:shared*1"));
    AppBuild b = pc.build(makeApp(), OptLevel::O1);

    const OperatorOutcome &oc = outcomeOf(b, "shared");
    EXPECT_FALSE(oc.degraded);
    EXPECT_EQ(oc.finalCode, CompileCode::Ok);
    ASSERT_EQ(oc.attempts.size(), 2u);
    EXPECT_EQ(oc.attempts[0].outcome, CompileCode::RouteInfeasible);
    EXPECT_EQ(oc.attempts[1].step, LadderStep::EscalateEffort);
    EXPECT_EQ(oc.attempts[1].outcome, CompileCode::Ok);
    EXPECT_EQ(b.bindings[0].impl, sys::PageImpl::Hw);
}

TEST(Fault, RouteFailRecoversViaPromotion)
{
    // Three failures push the ladder to the reserved larger page;
    // the fourth attempt (there) succeeds. The runtime binding must
    // follow the artifact to its promoted page.
    PldCompiler pc(device(), faultyOpts("route_fail:shared*3"));
    AppBuild b = pc.build(makeApp(), OptLevel::O1);

    const OperatorOutcome &oc = outcomeOf(b, "shared");
    EXPECT_FALSE(oc.degraded);
    ASSERT_EQ(oc.attempts.size(), 4u);
    EXPECT_EQ(oc.attempts[3].step, LadderStep::PromotePage);
    EXPECT_EQ(oc.attempts[3].outcome, CompileCode::Ok);
    int promoted = oc.attempts[3].page;
    EXPECT_NE(promoted, 1) << "op was pinned to page 1";
    EXPECT_EQ(b.bindings[0].impl, sys::PageImpl::Hw);
    EXPECT_EQ(b.bindings[0].pageId, promoted)
        << "binding must follow the artifact to the promoted page";
}

TEST(Fault, TimingMissEscalatesDeterministically)
{
    PldCompiler pc(device(), faultyOpts("timing_miss:shared*1"));
    AppBuild b = pc.build(makeApp(), OptLevel::O1);

    const OperatorOutcome &oc = outcomeOf(b, "shared");
    EXPECT_FALSE(oc.degraded);
    EXPECT_EQ(oc.finalCode, CompileCode::Ok);
    ASSERT_EQ(oc.attempts.size(), 2u);
    EXPECT_EQ(oc.attempts[0].outcome, CompileCode::TimingMiss);
    EXPECT_LT(oc.attempts[0].fmaxMHz, 200.0);
    EXPECT_EQ(oc.attempts[1].step, LadderStep::EscalateEffort);
    EXPECT_EQ(oc.attempts[1].outcome, CompileCode::Ok);

    PldCompiler pc2(device(), faultyOpts("timing_miss:shared*1"));
    AppBuild b2 = pc2.build(makeApp(), OptLevel::O1);
    EXPECT_EQ(b2.report.render(), b.report.render());
}

TEST(Fault, TimingMissAcceptedWithWarningAfterLadder)
{
    // Timing never closes: after effort escalation and a fresh seed
    // the page is accepted below the overlay clock with a warning —
    // a softcore would be slower still, so it is never the answer to
    // a timing miss.
    PldCompiler pc(device(), faultyOpts("timing_miss:shared"));
    AppBuild b = pc.build(makeApp(), OptLevel::O1);

    const OperatorOutcome &oc = outcomeOf(b, "shared");
    EXPECT_FALSE(oc.degraded);
    EXPECT_FALSE(oc.failed);
    EXPECT_EQ(oc.finalCode, CompileCode::TimingMiss);
    ASSERT_EQ(oc.attempts.size(), 3u);
    EXPECT_EQ(oc.attempts[2].step, LadderStep::FreshSeed);
    EXPECT_EQ(b.bindings[0].impl, sys::PageImpl::Hw);
    EXPECT_LT(b.fmaxMHz, 200.0)
        << "overlay clock derates to the achieved page fmax";
    bool warned = false;
    for (const auto &d : oc.status.diags) {
        warned |= (d.severity == DiagSeverity::Warning &&
                   d.code == CompileCode::TimingMiss);
    }
    EXPECT_TRUE(warned);
    EXPECT_TRUE(b.report.allOk());
}

// -------- golden-model equivalence of a degraded build --------------

TEST(Fault, RosettaOpticalFlowSoftcoreFallbackMatchesGolden)
{
    // The acceptance scenario: routing is unroutable for one
    // operator of a real benchmark; the -O1 build must complete via
    // the softcore fallback, the system simulation must still match
    // the independent golden model, and the report must name the
    // degraded operator.
    rosetta::Benchmark bm = rosetta::makeOpticalFlow();
    PldCompiler pc(device(), faultyOpts("route_fail:flow_calc"));
    AppBuild build = pc.build(bm.graph, OptLevel::O1);

    EXPECT_TRUE(build.report.allOk());
    EXPECT_EQ(build.report.degradedCount(), 1);
    const OperatorOutcome &oc = outcomeOf(build, "flow_calc");
    EXPECT_TRUE(oc.degraded);
    EXPECT_EQ(oc.attempts.back().step,
              LadderStep::SoftcoreFallback);
    std::string rendered = build.report.render();
    EXPECT_NE(rendered.find("flow_calc"), std::string::npos);

    sys::SystemSim sim(bm.graph, build.bindings, build.sysCfg);
    sim.loadInput(0, bm.input);
    auto rs = sim.run();
    ASSERT_TRUE(rs.completed);
    EXPECT_EQ(sim.takeOutput(0), bm.expected)
        << "degraded build must still match the golden model";

    // Reproducibility across a fresh compiler.
    PldCompiler pc2(device(), faultyOpts("route_fail:flow_calc"));
    AppBuild build2 = pc2.build(bm.graph, OptLevel::O1);
    EXPECT_EQ(build2.report.render(), rendered);
}

// -------- softcore tier equivalence on the fallback rung ------------

namespace {

std::vector<uint32_t>
runBuild(const Graph &g, const AppBuild &b,
         const std::vector<uint32_t> &in)
{
    sys::SystemSim sim(g, b.bindings, b.sysCfg);
    sim.loadInput(0, in);
    EXPECT_TRUE(sim.run().completed);
    return sim.takeOutput(0);
}

} // namespace

TEST(Fault, SoftcoreFallbackOsBitIdenticalToO0AcrossJobCounts)
{
    // The ladder's softcore rung at the optimizing -Os tier must be
    // bit-identical to the -O0 rung AND to the fault-free hardware
    // build — at 1 and 4 parallel page-compile jobs (the in-process
    // equivalent of the CI PLD_THREADS sweep).
    Graph g = makeApp();
    std::vector<uint32_t> in;
    for (int i = 0; i < 8; ++i)
        in.push_back(static_cast<uint32_t>(i) * 0x00012340u);

    CompileOptions co;
    co.effort = 0.1;
    PldCompiler clean(device(), co);
    AppBuild cb = clean.build(g, OptLevel::O1);
    ASSERT_TRUE(cb.report.allOk());
    auto golden = runBuild(g, cb, in);

    std::vector<uint32_t> text[2]; // O0/Os image of "shared"
    for (unsigned jobs : {1u, 4u}) {
        for (int t = 0; t < 2; ++t) {
            CompileOptions o = faultyOpts("route_fail:shared");
            o.parallelJobs = jobs;
            o.softcoreTier =
                t ? rvgen::Tier::Os : rvgen::Tier::O0;
            PldCompiler pc(device(), o);
            AppBuild b = pc.build(g, OptLevel::O1);
            ASSERT_TRUE(b.report.allOk());
            EXPECT_TRUE(outcomeOf(b, "shared").degraded);
            ASSERT_EQ(b.bindings[0].impl, sys::PageImpl::Softcore);
            EXPECT_EQ(runBuild(g, b, in), golden)
                << "jobs=" << jobs << " tier="
                << rvgen::tierName(o.softcoreTier);
            text[t] = b.bindings[0].elf.text;
        }
        EXPECT_NE(text[0], text[1])
            << "the tiers must actually emit different code";
        EXPECT_LT(text[1].size(), text[0].size())
            << "-Os should be smaller on this kernel";
    }
}

TEST(Fault, SoftcoreTierSurfacesInBuildTelemetry)
{
    // The tier decision is observable: a degraded build at the
    // default (Os) tier counts rvgen.tier.Os and records per-compile
    // instruction counts; forcing O0 counts rvgen.tier.O0.
    obs::ScopedTracer st;
    {
        PldCompiler pc(device(), faultyOpts("route_fail:shared"));
        AppBuild b = pc.build(makeApp(), OptLevel::O1);
        ASSERT_TRUE(b.report.allOk());
        EXPECT_GE(b.report.metrics.counter("rvgen.tier.Os"), 1);
        EXPECT_EQ(b.report.metrics.counter("rvgen.tier.O0"), 0);
        EXPECT_EQ(b.report.metrics.counter("rvgen.compiles"),
                  b.report.metrics.counter("rvgen.tier.Os"));
        const obs::DistSummary *d =
            b.report.metrics.dist("rvgen.instructions");
        ASSERT_NE(d, nullptr);
        EXPECT_GT(d->min, 0.0);
    }
    {
        CompileOptions o = faultyOpts("route_fail:shared");
        o.softcoreTier = rvgen::Tier::O0;
        PldCompiler pc(device(), o);
        AppBuild b = pc.build(makeApp(), OptLevel::O1);
        ASSERT_TRUE(b.report.allOk());
        EXPECT_GE(b.report.metrics.counter("rvgen.tier.O0"), 1);
        EXPECT_EQ(b.report.metrics.counter("rvgen.tier.Os"), 0);
    }
}

// -------- cache hardening -------------------------------------------

TEST(Fault, CorruptCacheEntryRecompilesExactlyOnce)
{
    // The first publish of "shared" stores a corrupted checksum. The
    // next build detects it on lookup, evicts, and recompiles — the
    // recompile (generation 1) publishes clean.
    PldCompiler pc(device(), faultyOpts("cache_corrupt:shared*1"));
    Graph g = makeApp();

    AppBuild b1 = pc.build(g, OptLevel::O1);
    EXPECT_TRUE(b1.report.allOk());
    EXPECT_EQ(pc.cacheStats().misses, 2u);
    EXPECT_EQ(pc.cacheStats().compiles, 2u);
    EXPECT_EQ(pc.cacheStats().corrupt, 0u);

    AppBuild b2 = pc.build(g, OptLevel::O1);
    EXPECT_TRUE(b2.report.allOk());
    EXPECT_EQ(outcomeOf(b2, "shared").fromCache, false)
        << "corrupt entry must not be served";
    EXPECT_EQ(outcomeOf(b2, "tail").fromCache, true);
    EXPECT_EQ(pc.cacheStats().corrupt, 1u);
    EXPECT_EQ(pc.cacheStats().misses, 3u);
    EXPECT_EQ(pc.cacheStats().compiles, 3u);
    EXPECT_EQ(pc.cacheStats().hits, 1u);

    // The recompiled entry is clean: third build hits both ops.
    AppBuild b3 = pc.build(g, OptLevel::O1);
    EXPECT_EQ(pc.cacheStats().corrupt, 1u);
    EXPECT_EQ(pc.cacheStats().hits, 3u);
    EXPECT_EQ(pc.cacheStats().compiles, 3u);
}

TEST(Fault, ThrowPublishesFailureSentinelWaitersRetry)
{
    // The first compile of "shared" throws mid-flight. The failure
    // sentinel must wake waiters (no hang), exactly one re-claims
    // and compiles clean, and the thrown-into build reports the
    // operator as failed with a structured diagnostic.
    const int kThreads = 6;
    PldCompiler pc(device(), faultyOpts("throw:shared*1"));
    Graph g = makeApp();

    std::vector<AppBuild> builds(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            builds[t] = pc.build(g, OptLevel::O1);
        });
    }
    for (auto &t : threads)
        t.join();

    int failed_builds = 0;
    for (const auto &b : builds) {
        failed_builds += b.report.failedCount() > 0;
        for (const auto &oc : b.report.ops) {
            if (oc.failed) {
                EXPECT_EQ(oc.op, "shared");
                EXPECT_EQ(oc.finalCode,
                          CompileCode::CompileException);
                EXPECT_FALSE(oc.status.ok());
            }
        }
    }
    EXPECT_EQ(failed_builds, 1)
        << "exactly one build observes the injected throw";

    const CacheStats &st = pc.cacheStats();
    EXPECT_EQ(st.failures, 1u);
    EXPECT_EQ(st.compiles + st.failures, st.misses)
        << "every miss either compiled or published a failure";
    EXPECT_EQ(st.hits + st.misses,
              uint64_t(kThreads) * 2u);
}

TEST(Fault, DegradedArtifactNotServedAtHigherEffort)
{
    // Generation 0 (attempts 0..15) is unroutable, so the low-effort
    // build degrades to the softcore and caches that. A same-effort
    // rebuild may serve it — but a higher-effort rebuild must evict
    // and retry the ladder, which now (generation 1, attempts 16+)
    // routes cleanly back onto hardware.
    PldCompiler pc(device(), faultyOpts("route_fail:shared*16"));
    Graph g = makeApp();

    AppBuild b1 = pc.build(g, OptLevel::O1);
    EXPECT_TRUE(outcomeOf(b1, "shared").degraded);

    AppBuild b2 = pc.build(g, OptLevel::O1);
    EXPECT_TRUE(outcomeOf(b2, "shared").fromCache)
        << "same effort: the degraded artifact is a legitimate hit";
    EXPECT_TRUE(outcomeOf(b2, "shared").degraded);

    AppBuild b3 = pc.build(g, OptLevel::O1, /*effort_override=*/1.0);
    const OperatorOutcome &oc = outcomeOf(b3, "shared");
    EXPECT_FALSE(oc.fromCache)
        << "higher effort must not be satisfied by a fallback";
    EXPECT_FALSE(oc.degraded);
    EXPECT_EQ(b3.bindings[0].impl, sys::PageImpl::Hw);

    // Now a full-quality artifact is cached; it satisfies any build.
    uint64_t hits_before = pc.cacheStats().hits;
    AppBuild b4 = pc.build(g, OptLevel::O1, 1.0);
    EXPECT_TRUE(outcomeOf(b4, "shared").fromCache);
    EXPECT_EQ(pc.cacheStats().hits, hits_before + 2);
}
