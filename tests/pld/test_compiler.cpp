#include <gtest/gtest.h>

#include <algorithm>

#include "dataflow/runtime.h"
#include "fabric/device.h"
#include "ir/builder.h"
#include "pld/compiler.h"
#include "sys/system.h"

using namespace pld;
using namespace pld::ir;
using namespace pld::flow;

namespace {

const fabric::Device &
device()
{
    static fabric::Device d = fabric::makeU50();
    return d;
}

OperatorFn
makeScale(const std::string &name, double k, int n)
{
    constexpr Type fx = Type::fx(32, 17);
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", fx);
    b.forLoop(0, n, [&](Ex) {
        b.set(x, b.read(in).bitcast(fx));
        b.write(out, (Ex(x) * litF(k, fx)).cast(fx));
    });
    return b.finish();
}

Graph
makeApp(int n)
{
    GraphBuilder gb("scale2");
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto mid = gb.wire();
    gb.inst(makeScale("s1", 2.0, n), {in}, {mid});
    gb.inst(makeScale("s2", 0.5, n), {mid}, {out});
    return gb.finish();
}

/**
 * Chain of @p k distinct scale operators. Operator count is what
 * grows netlist size (loop bounds do not), so scaling assertions on
 * the monolithic-vs-paged gap must vary k, not n.
 */
Graph
makeChainApp(int k, int n)
{
    GraphBuilder gb("chain" + std::to_string(k));
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    GraphBuilder::WireId prev = in;
    for (int i = 0; i < k; ++i) {
        GraphBuilder::WireId next = (i == k - 1) ? out : gb.wire();
        // Distinct constants so every operator is a distinct artifact.
        gb.inst(makeScale("c" + std::to_string(i), 0.5 + 0.125 * i, n),
                {prev}, {next});
        prev = next;
    }
    return gb.finish();
}

std::vector<uint32_t>
fxInputs(int n)
{
    std::vector<uint32_t> v;
    for (int i = 0; i < n; ++i)
        v.push_back(static_cast<uint32_t>((i - n / 2) * 32768));
    return v;
}

CompileOptions
quickOpts()
{
    CompileOptions o;
    o.effort = 0.15;
    o.parallelJobs = 4;
    return o;
}

/** Build then execute; return output words. */
std::vector<uint32_t>
buildAndRun(PldCompiler &pc, const Graph &g, OptLevel level, int n)
{
    AppBuild b = pc.build(g, level);
    sys::SystemSim sim(g, b.bindings, b.sysCfg);
    sim.loadInput(0, fxInputs(n));
    auto rs = sim.run();
    EXPECT_TRUE(rs.completed) << optLevelName(level);
    return sim.takeOutput(0);
}

} // namespace

TEST(Flow, AllFourLevelsProduceIdenticalResults)
{
    const int n = 16;
    Graph g = makeApp(n);

    dataflow::GraphRuntime gold(g);
    gold.pushInput(0, fxInputs(n));
    ASSERT_TRUE(gold.run());
    auto expected = gold.takeOutput(0);

    PldCompiler pc(device(), quickOpts());
    for (OptLevel lvl : {OptLevel::O0, OptLevel::O1, OptLevel::O3,
                         OptLevel::Vitis}) {
        auto out = buildAndRun(pc, g, lvl, n);
        EXPECT_EQ(out, expected) << optLevelName(lvl);
    }
}

TEST(Flow, O0CompilesFarFasterThanO1)
{
    Graph g = makeApp(64);
    PldCompiler pc(device(), quickOpts());
    AppBuild o0 = pc.build(g, OptLevel::O0);
    pc.clearCache();
    AppBuild o1 = pc.build(g, OptLevel::O1);
    EXPECT_LT(o0.wallTimes.total() * 5, o1.wallTimes.total())
        << "-O0 must be much faster to compile (Table 2)";
}

TEST(Flow, O1CompilesFasterThanMonolithic)
{
    Graph g = makeApp(64);
    PldCompiler pc(device(), quickOpts());
    AppBuild o1 = pc.build(g, OptLevel::O1);
    AppBuild o3 = pc.build(g, OptLevel::O3);
    EXPECT_LT(o1.wallTimes.pnr, o3.wallTimes.pnr)
        << "separate page compiles beat monolithic p&r (Table 2)";
}

TEST(Flow, MonolithicGapGrowsWithOperatorCount)
{
    // The paper's headline scaling claim, made strict: -O1 page
    // compiles are embarrassingly parallel so their p&r wall time is
    // ~one page regardless of app size, while monolithic p&r grows
    // super-linearly with operator count. The O3/O1 ratio must widen
    // as the app grows. Alongside the wall-clock ratio we check a
    // deterministic proxy — annealer moves are a pure function of
    // netlist size (effort * n^1.2 per temperature), immune to
    // machine load.
    // Full effort so each p&r run is long enough that clock noise is
    // a small fraction; median of 3 fresh builds for the wall ratio.
    auto ratios = [](int k) {
        CompileOptions o;
        o.effort = 1.0;
        o.parallelJobs = 4;
        Graph g = makeChainApp(k, 8);
        std::vector<double> walls;
        double moves = 0;
        for (int rep = 0; rep < 3; ++rep) {
            PldCompiler pc(device(), o);
            AppBuild o1 = pc.build(g, OptLevel::O1);
            AppBuild o3 = pc.build(g, OptLevel::O3);
            uint64_t page_moves = 0;
            for (const auto &op : o1.ops)
                page_moves = std::max(page_moves, op.pnr.placeMoves);
            EXPECT_GT(page_moves, 0u) << "k=" << k;
            walls.push_back(o3.wallTimes.pnr /
                            std::max(o1.wallTimes.pnr, 1e-9));
            // Deterministic: same netlists and seeds every rep.
            moves = double(o3.monoPnr.placeMoves) /
                    double(page_moves);
        }
        std::sort(walls.begin(), walls.end());
        struct R
        {
            double wall;
            double moves;
        };
        return R{walls[1], moves};
    };

    auto r2 = ratios(2);
    auto r6 = ratios(6);
    EXPECT_GT(r6.moves, r2.moves)
        << "monolithic p&r work must grow faster than per-page work";
    EXPECT_GT(r6.wall, r2.wall)
        << "O3/O1 p&r wall-time gap must widen with operator count";
    EXPECT_GT(r2.wall, 1.0)
        << "even at 2 operators, paged p&r beats monolithic";
}

TEST(Flow, BuildIdenticalAcrossPnrThreadCounts)
{
    // Thread count is a wall-time knob, never a result knob: a full
    // AppBuild must be bit-identical at pnrThreads=1 and 8, with
    // restarts engaged, at both the paged and monolithic levels.
    Graph g = makeApp(16);
    CompileOptions serial = quickOpts();
    serial.pnrThreads = 1;
    serial.pnrRestarts = 2;
    CompileOptions wide = serial;
    wide.pnrThreads = 8;

    for (OptLevel lvl : {OptLevel::O1, OptLevel::O3}) {
        PldCompiler pa(device(), serial);
        PldCompiler pb(device(), wide);
        AppBuild a = pa.build(g, lvl);
        AppBuild b = pb.build(g, lvl);
        EXPECT_EQ(a.area.luts, b.area.luts) << optLevelName(lvl);
        EXPECT_EQ(a.area.bram18, b.area.bram18) << optLevelName(lvl);
        EXPECT_EQ(a.fmaxMHz, b.fmaxMHz) << optLevelName(lvl);
        EXPECT_EQ(a.totalBitstreamBytes, b.totalBitstreamBytes)
            << optLevelName(lvl);
        ASSERT_EQ(a.ops.size(), b.ops.size());
        for (size_t i = 0; i < a.ops.size(); ++i)
            EXPECT_EQ(a.ops[i].pnr.bits.hash, b.ops[i].pnr.bits.hash)
                << optLevelName(lvl) << " op " << i;
        if (lvl == OptLevel::O3) {
            EXPECT_EQ(a.monoPnr.bits.hash, b.monoPnr.bits.hash);
            EXPECT_EQ(a.monoPnr.place.pos, b.monoPnr.place.pos);
            EXPECT_EQ(a.monoPnr.routing.totalWirelength,
                      b.monoPnr.routing.totalWirelength);
        }
    }
}

TEST(Flow, IncrementalRecompileHitsCache)
{
    Graph g = makeApp(32);
    PldCompiler pc(device(), quickOpts());
    pc.build(g, OptLevel::O1);
    EXPECT_EQ(pc.cacheStats().hits, 0u);

    // Unchanged rebuild: both operators come from the cache.
    AppBuild again = pc.build(g, OptLevel::O1);
    EXPECT_EQ(pc.cacheStats().hits, 2u);
    EXPECT_TRUE(again.ops[0].fromCache);
    EXPECT_TRUE(again.ops[1].fromCache);

    // Edit one operator: only it recompiles.
    Graph g2 = g;
    g2.ops[0].fn.body[0]->immHi += 1;
    AppBuild after = pc.build(g2, OptLevel::O1);
    EXPECT_FALSE(after.ops[0].fromCache);
    EXPECT_TRUE(after.ops[1].fromCache);
}

TEST(Flow, CachedRebuildHasNearZeroWallTime)
{
    Graph g = makeApp(32);
    PldCompiler pc(device(), quickOpts());
    AppBuild first = pc.build(g, OptLevel::O1);
    AppBuild second = pc.build(g, OptLevel::O1);
    EXPECT_LT(second.wallTimes.total(),
              first.wallTimes.total() * 0.2 + 1e-3);
}

TEST(Flow, PragmaSelectsMixedTargets)
{
    const int n = 8;
    Graph g = makeApp(n);
    g.ops[0].fn.pragma.target = Target::RISCV; // Fig 2a line 4
    PldCompiler pc(device(), quickOpts());
    AppBuild b = pc.build(g, OptLevel::O1);
    EXPECT_EQ(b.ops[0].target, Target::RISCV);
    EXPECT_EQ(b.ops[1].target, Target::HW);
    EXPECT_EQ(b.bindings[0].impl, sys::PageImpl::Softcore);
    EXPECT_EQ(b.bindings[1].impl, sys::PageImpl::Hw);

    sys::SystemSim sim(g, b.bindings, b.sysCfg);
    sim.loadInput(0, fxInputs(n));
    auto rs = sim.run();
    EXPECT_TRUE(rs.completed);
}

TEST(Flow, PragmaPageNumberIsHonoured)
{
    Graph g = makeApp(8);
    g.ops[0].fn.pragma.pageNum = 7;
    g.ops[1].fn.pragma.pageNum = 13;
    PldCompiler pc(device(), quickOpts());
    AppBuild b = pc.build(g, OptLevel::O1);
    EXPECT_EQ(b.ops[0].page, 7);
    EXPECT_EQ(b.ops[1].page, 13);
}

TEST(Flow, VitisAreaBelowO3Area)
{
    // Table 4: -O3 adds FIFO link resources over the fused baseline.
    Graph g = makeApp(32);
    PldCompiler pc(device(), quickOpts());
    AppBuild vit = pc.build(g, OptLevel::Vitis);
    AppBuild o3 = pc.build(g, OptLevel::O3);
    EXPECT_GE(o3.area.bram18, vit.area.bram18);
    EXPECT_GE(o3.area.luts, vit.area.luts);
}

TEST(Flow, O1AreaAboveO3Area)
{
    // Table 4: the leaf interfaces make -O1 bigger than -O3.
    Graph g = makeApp(32);
    PldCompiler pc(device(), quickOpts());
    AppBuild o1 = pc.build(g, OptLevel::O1);
    AppBuild o3 = pc.build(g, OptLevel::O3);
    EXPECT_GT(o1.area.luts, o3.area.luts);
}

TEST(Flow, PartialBitstreamsAreSmall)
{
    Graph g = makeApp(32);
    PldCompiler pc(device(), quickOpts());
    AppBuild o1 = pc.build(g, OptLevel::O1);
    AppBuild o3 = pc.build(g, OptLevel::O3);
    EXPECT_LT(o1.totalBitstreamBytes, o3.totalBitstreamBytes)
        << "partial page bitstreams vs full-chip (Sec 2.3)";
}

TEST(Flow, DfgExtracted)
{
    Graph g = makeApp(8);
    PldCompiler pc(device(), quickOpts());
    AppBuild b = pc.build(g, OptLevel::O1);
    EXPECT_EQ(b.dfg.ops.size(), 2u);
    EXPECT_EQ(b.dfg.links.size(), 3u);
}
