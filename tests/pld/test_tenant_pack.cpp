/**
 * packTenantApps: the compiler-side half of the multi-tenant fabric.
 * Packing validates each app as a tenant (name, paged build, grid
 * footprint), attaches a softcore fallback ELF to every binding (so
 * the swap engine can quarantine any page), and emits TenantSpecs
 * that drop straight into the TenantScheduler.
 */

#include <gtest/gtest.h>

#include "dataflow/runtime.h"
#include "fabric/device.h"
#include "ir/builder.h"
#include "pld/compiler.h"
#include "sys/tenancy.h"

using namespace pld;
using namespace pld::ir;
using namespace pld::flow;

namespace {

const fabric::Device &
device()
{
    static fabric::Device d = fabric::makeU50();
    return d;
}

OperatorFn
makeAdd(const std::string &name, int k, int n)
{
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, n, [&](Ex) {
        b.write(out, b.read(in).bitcast(Type::s(32)) + k);
    });
    return b.finish();
}

Graph
makeApp(const std::string &prefix, int k, int n)
{
    GraphBuilder gb(prefix);
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto mid = gb.wire();
    gb.inst(makeAdd(prefix + "_a", k, n), {in}, {mid});
    gb.inst(makeAdd(prefix + "_b", k + 1, n), {mid}, {out});
    return gb.finish();
}

CompileOptions
quickOpts()
{
    CompileOptions o;
    o.effort = 0.15;
    o.parallelJobs = 4;
    return o;
}

std::vector<uint32_t>
iota(int n)
{
    std::vector<uint32_t> v;
    for (int i = 0; i < n; ++i)
        v.push_back(static_cast<uint32_t>(i));
    return v;
}

} // namespace

TEST(TenantPack, AttachesFallbacksAndValidates)
{
    const int n = 16;
    Graph g1 = makeApp("app1", 3, n);
    Graph g2 = makeApp("app2", 7, n);
    PldCompiler pc(device(), quickOpts());
    AppBuild b1 = pc.build(g1, OptLevel::O1);
    AppBuild b2 = pc.build(g2, OptLevel::O1);

    TenantPack pack = pc.packTenantApps(
        {{"alpha", &g1, &b1}, {"beta", &g2, &b2}});
    EXPECT_TRUE(pack.status.ok()) << pack.status.render();
    ASSERT_EQ(pack.specs.size(), 2u);
    EXPECT_EQ(pack.maxPages, 2);
    EXPECT_EQ(pack.totalPages, 4);
    for (const auto &spec : pack.specs) {
        EXPECT_FALSE(spec.name.empty());
        ASSERT_NE(spec.graph, nullptr);
        for (const auto &b : spec.bindings) {
            EXPECT_TRUE(b.hasFallback)
                << spec.name << " page " << b.pageId
                << ": every tenant page needs a quarantine target";
            EXPECT_FALSE(b.fallbackElf.text.empty());
            EXPECT_NE(b.imageHash, 0u)
                << "reinstatement needs the identical-image hash";
        }
    }
}

TEST(TenantPack, RejectsMonolithicAndBadNamesButPacksTheRest)
{
    const int n = 16;
    Graph g1 = makeApp("app1", 3, n);
    Graph g2 = makeApp("app2", 7, n);
    PldCompiler pc(device(), quickOpts());
    AppBuild paged = pc.build(g1, OptLevel::O1);
    AppBuild mono = pc.build(g2, OptLevel::Vitis);

    TenantPack pack = pc.packTenantApps({
        {"ok", &g1, &paged},
        {"mono", &g2, &mono},        // not paged: no NoC overlay
        {"bad/name", &g1, &paged},   // '/' collides with fault scoping
        {"ok", &g1, &paged},         // duplicate
    });
    ASSERT_EQ(pack.specs.size(), 1u)
        << "invalid apps are rejected; valid ones still pack";
    EXPECT_EQ(pack.specs[0].name, "ok");
    EXPECT_FALSE(pack.status.ok());
    size_t rejections = 0;
    for (const auto &d : pack.status.diags)
        rejections += d.code == CompileCode::AdmissionRejected;
    EXPECT_EQ(rejections, 3u);
}

TEST(TenantPack, PackedSpecsRunUnderTheScheduler)
{
    // End-to-end: compile two apps, pack, admit, time-share a grid
    // smaller than their combined footprint, and check both tenants'
    // outputs against the dataflow reference.
    const int n = 32;
    Graph g1 = makeApp("app1", 3, n);
    Graph g2 = makeApp("app2", 7, n);
    PldCompiler pc(device(), quickOpts());
    AppBuild b1 = pc.build(g1, OptLevel::O1);
    AppBuild b2 = pc.build(g2, OptLevel::O1);
    TenantPack pack = pc.packTenantApps(
        {{"alpha", &g1, &b1}, {"beta", &g2, &b2}});
    ASSERT_TRUE(pack.status.ok()) << pack.status.render();

    sys::TenantLimits lim;
    lim.fabricPages = pack.maxPages; // forces eviction
    lim.sliceCycles = 500;
    sys::TenantScheduler sched(lim);
    std::vector<int> ids;
    for (const auto &spec : pack.specs) {
        auto r = sched.admit(spec);
        ASSERT_TRUE(r.accepted) << r.diag.detail;
        ASSERT_TRUE(
            sched.submit(r.tenantId, {iota(n)}).accepted);
        ids.push_back(r.tenantId);
    }
    ASSERT_TRUE(sched.run().allWorkDone);

    const Graph *graphs[] = {&g1, &g2};
    for (size_t t = 0; t < ids.size(); ++t) {
        dataflow::GraphRuntime gold(*graphs[t]);
        gold.pushInput(0, iota(n));
        ASSERT_TRUE(gold.run());
        auto out = sched.takeOutput(ids[t]);
        ASSERT_EQ(out.size(), 1u);
        EXPECT_EQ(out[0].streams[0], gold.takeOutput(0))
            << pack.specs[t].name;
    }
}
