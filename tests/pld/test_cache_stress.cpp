/**
 * Concurrency stress for the sharded artifact cache: many threads
 * build graphs sharing operators through one PldCompiler at once.
 * The cache must stay consistent — every lookup is exactly one hit
 * or one miss, misses equal the number of unique artifacts, and no
 * artifact is ever compiled twice (late arrivals wait on the
 * in-flight compile instead of duplicating it). Run under
 * -fsanitize=thread in CI to catch data races in the compile path.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fabric/device.h"
#include "ir/builder.h"
#include "pld/compiler.h"

using namespace pld;
using namespace pld::ir;
using namespace pld::flow;

namespace {

const fabric::Device &
device()
{
    static fabric::Device d = fabric::makeU50();
    return d;
}

OperatorFn
makeScale(const std::string &name, double k, int n)
{
    constexpr Type fx = Type::fx(32, 17);
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", fx);
    b.forLoop(0, n, [&](Ex) {
        b.set(x, b.read(in).bitcast(fx));
        b.write(out, (Ex(x) * litF(k, fx)).cast(fx));
    });
    return b.finish();
}

/** Two-operator app; the first operator is shared across variants. */
Graph
makeApp(double second_k)
{
    GraphBuilder gb("app");
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto mid = gb.wire();
    gb.inst(makeScale("shared", 2.0, 8), {in}, {mid});
    gb.inst(makeScale("tail", second_k, 8), {mid}, {out});
    return gb.finish();
}

CompileOptions
quickOpts()
{
    CompileOptions o;
    o.effort = 0.1;
    o.parallelJobs = 2;
    return o;
}

} // namespace

TEST(CacheStress, ConcurrentBuildsCompileEachArtifactOnce)
{
    const int kThreads = 8;
    const int kReps = 3;
    PldCompiler pc(device(), quickOpts());
    Graph g = makeApp(0.5);

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int r = 0; r < kReps; ++r) {
                AppBuild b = pc.build(g, OptLevel::O1);
                EXPECT_EQ(b.ops.size(), 2u);
                EXPECT_EQ(b.ops[0].name, "shared");
                EXPECT_GT(b.ops[0].net.cells.size(), 0u);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    const CacheStats &st = pc.cacheStats();
    const uint64_t lookups = uint64_t(kThreads) * kReps * 2;
    EXPECT_EQ(st.hits + st.misses, lookups)
        << "every lookup is exactly one hit or one miss";
    EXPECT_EQ(st.misses, 2u) << "one miss per unique artifact";
    EXPECT_EQ(st.compiles, 2u) << "no artifact compiled twice";
    EXPECT_EQ(st.hits, lookups - 2u);
}

TEST(CacheStress, SharedOperatorAcrossGraphVariants)
{
    // Different graphs share operator "shared"; it lands on the same
    // page by deterministic first-fit, so all variants hit one cache
    // entry while their tails compile separately.
    const int kThreads = 6;
    const int kReps = 2;
    PldCompiler pc(device(), quickOpts());
    std::vector<Graph> variants;
    for (int v = 0; v < 3; ++v)
        variants.push_back(makeApp(0.25 * (v + 1)));

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int r = 0; r < kReps; ++r) {
                const Graph &g = variants[(t + r) % variants.size()];
                AppBuild b = pc.build(g, OptLevel::O1);
                EXPECT_EQ(b.ops.size(), 2u);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    const CacheStats &st = pc.cacheStats();
    const uint64_t lookups = uint64_t(kThreads) * kReps * 2;
    // Unique artifacts: "shared" (one page, one key) + 3 tails.
    EXPECT_EQ(st.misses, 4u);
    EXPECT_EQ(st.compiles, 4u);
    EXPECT_EQ(st.hits + st.misses, lookups);
}

TEST(CacheStress, ClearCacheResetsCounters)
{
    PldCompiler pc(device(), quickOpts());
    pc.build(makeApp(0.5), OptLevel::O1);
    EXPECT_GT(pc.cacheStats().misses, 0u);
    pc.clearCache();
    EXPECT_EQ(pc.cacheStats().hits, 0u);
    EXPECT_EQ(pc.cacheStats().misses, 0u);
    EXPECT_EQ(pc.cacheStats().compiles, 0u);
    EXPECT_EQ(pc.cacheStats().failures, 0u);
    EXPECT_EQ(pc.cacheStats().corrupt, 0u);
    // Rebuild after clear recompiles everything.
    pc.build(makeApp(0.5), OptLevel::O1);
    EXPECT_EQ(pc.cacheStats().misses, 2u);
    EXPECT_EQ(pc.cacheStats().compiles, 2u);
}

TEST(CacheStress, FailureSentinelNeverStrandsWaiters)
{
    // Regression for the latent waiter hang: before the failure
    // sentinel, a compile that threw left its cache entry null
    // forever and every waiter slept on the condition variable for
    // good. Here the first compile of "shared" throws while many
    // threads race on the same key; the test passing at all (no
    // hang) is the point, and the counters must still balance.
    const int kThreads = 8;
    CompileOptions o = quickOpts();
    o.faults = FaultPlan::parse("throw:shared*1");
    PldCompiler pc(device(), o);
    Graph g = makeApp(0.5);

    std::vector<int> failed(kThreads, 0);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            AppBuild b = pc.build(g, OptLevel::O1);
            failed[t] = b.report.failedCount();
            EXPECT_EQ(b.ops.size(), 2u);
        });
    }
    for (auto &t : threads)
        t.join();

    int total_failed = 0;
    for (int f : failed)
        total_failed += f;
    EXPECT_EQ(total_failed, 1)
        << "the injected throw surfaces in exactly one build";

    const CacheStats &st = pc.cacheStats();
    const uint64_t lookups = uint64_t(kThreads) * 2;
    EXPECT_EQ(st.hits + st.misses, lookups)
        << "every lookup is exactly one hit or one miss";
    EXPECT_EQ(st.failures, 1u);
    EXPECT_EQ(st.compiles + st.failures, st.misses)
        << "every miss either compiled or published a failure";
    EXPECT_EQ(st.compiles, 2u) << "no artifact compiled twice";
}