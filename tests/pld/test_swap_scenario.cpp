/**
 * End-to-end hot-swap scenario: the paper's edit→recompile→hot-swap
 * loop under runtime faults. An app is compiled and run; one operator
 * is edited and incrementally recompiled (buildSwapArtifact); the
 * resulting swap package is applied live while config_corrupt and
 * page_hang faults fire — the runtime must retransmit, roll back,
 * and finally quarantine the page onto its softcore fallback, and the
 * post-swap output words must be bit-identical to a fault-free swap
 * of the same artifact. The whole scenario, including the telemetry
 * fingerprint, must be identical across compile thread counts.
 */

#include <gtest/gtest.h>

#include "dataflow/runtime.h"
#include "fabric/device.h"
#include "ir/builder.h"
#include "obs/trace.h"
#include "pld/compiler.h"
#include "sys/system.h"

using namespace pld;
using namespace pld::ir;
using namespace pld::flow;

namespace {

const fabric::Device &
device()
{
    static fabric::Device d = fabric::makeU50();
    return d;
}

OperatorFn
makeScale(const std::string &name, double k, int n)
{
    constexpr Type fx = Type::fx(32, 17);
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    auto x = b.var("x", fx);
    b.forLoop(0, n, [&](Ex) {
        b.set(x, b.read(in).bitcast(fx));
        b.write(out, (Ex(x) * litF(k, fx)).cast(fx));
    });
    return b.finish();
}

Graph
makeApp(double tail_k)
{
    GraphBuilder gb("app");
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto mid = gb.wire();
    gb.inst(makeScale("head", 2.0, 8), {in}, {mid});
    gb.inst(makeScale("tail", tail_k, 8), {mid}, {out});
    return gb.finish();
}

std::vector<uint32_t>
batch(int n, uint32_t base)
{
    std::vector<uint32_t> v;
    for (int i = 0; i < n; ++i)
        v.push_back(base + static_cast<uint32_t>(i) * 3u);
    return v;
}

CompileOptions
opts(unsigned jobs)
{
    CompileOptions o;
    o.effort = 0.1;
    o.parallelJobs = jobs;
    return o;
}

/** Golden words for graph @p g on @p in, from the functional model. */
std::vector<uint32_t>
golden(const Graph &g, const std::vector<uint32_t> &in)
{
    dataflow::GraphRuntime rt(g);
    rt.pushInput(0, in);
    EXPECT_TRUE(rt.run());
    return rt.takeOutput(0);
}

struct ScenarioOutcome
{
    sys::SwapResult swap;
    std::vector<uint32_t> words;
    uint64_t countersFp = 0;
};

/**
 * Run the full scenario at one compile parallelism: build, run batch
 * 1, edit "tail", recompile it into a SwapArtifact, hot-swap under
 * config_corrupt + page_hang, run batch 2.
 */
ScenarioOutcome
runScenario(unsigned jobs, const Graph &base_g, const Graph &edit_g)
{
    PldCompiler pc(device(), opts(jobs));
    AppBuild build = pc.build(base_g, OptLevel::O1);
    EXPECT_TRUE(build.report.allOk());

    SwapArtifact sa = pc.buildSwapArtifact(edit_g, "tail", build);
    EXPECT_TRUE(sa.fnChanged);
    EXPECT_TRUE(sa.binding.hasFallback);
    EXPECT_GT(sa.binding.imageBytes, 0u);

    sys::SystemConfig cfg = build.sysCfg;
    cfg.swapMaxRetransmits = 4;
    cfg.swapMaxAttempts = 2;
    // Attempt 0: fault coordinates 0..4 are all corrupt — retransmit
    // exhaustion, rollback. Attempt 1: coordinates 16,17 corrupt then
    // clean — the stream completes, but activation hangs (page_hang
    // coordinate 16 < 32) and the watchdog forces the final rollback
    // and quarantine.
    cfg.faults =
        FaultPlan::parse("config_corrupt:tail*18;page_hang:tail*32");

    ScenarioOutcome so;
    obs::ScopedTracer st;
    sys::SystemSim sim(base_g, build.bindings, cfg);
    sim.loadInput(0, batch(8, 1000));
    EXPECT_TRUE(sim.run().completed);
    sim.takeOutput(0);

    so.swap = sim.swapPage(sa.binding.pageId, sa.binding, &sa.fn);

    sim.loadInput(0, batch(8, 5000));
    EXPECT_TRUE(sim.run().completed);
    so.words = sim.takeOutput(0);
    so.countersFp =
        st.tracer().metrics().snapshot().countersHash();
    return so;
}

} // namespace

TEST(SwapScenario, EditRecompileHotSwapUnderFaults)
{
    Graph base_g = makeApp(0.5);
    Graph edit_g = makeApp(0.25);

    ScenarioOutcome so = runScenario(2, base_g, edit_g);

    // The runtime exercised every recovery layer.
    EXPECT_EQ(so.swap.outcome, sys::SwapOutcome::Quarantined);
    EXPECT_GT(so.swap.retransmits, 0u);
    EXPECT_GT(so.swap.crcErrors, 0u);
    EXPECT_EQ(so.swap.rollbacks, 2);
    EXPECT_EQ(so.swap.attempts, 2);
    EXPECT_TRUE(so.swap.watchdogFired);

    // Quarantined onto the softcore fallback of the EDITED function:
    // batch 2 must match the functional model of the edited graph...
    EXPECT_EQ(so.words, golden(edit_g, batch(8, 5000)));

    // ...and be bit-identical to a fault-free swap of the very same
    // artifact (which lands on hardware instead).
    PldCompiler pc(device(), opts(2));
    AppBuild build = pc.build(base_g, OptLevel::O1);
    SwapArtifact sa = pc.buildSwapArtifact(edit_g, "tail", build);
    sys::SystemSim ref(base_g, build.bindings, build.sysCfg);
    ref.loadInput(0, batch(8, 1000));
    ASSERT_TRUE(ref.run().completed);
    ref.takeOutput(0);
    sys::SwapResult rr =
        ref.swapPage(sa.binding.pageId, sa.binding, &sa.fn);
    EXPECT_EQ(rr.outcome, sys::SwapOutcome::Swapped);
    EXPECT_EQ(ref.pageImpl(sa.binding.pageId), sys::PageImpl::Hw);
    ref.loadInput(0, batch(8, 5000));
    ASSERT_TRUE(ref.run().completed);
    EXPECT_EQ(ref.takeOutput(0), so.words)
        << "quarantined softcore and clean hardware swap must agree";
}

TEST(SwapScenario, IdenticalAcrossCompileParallelism)
{
    // PLD_THREADS-style determinism: the swap counters, the output
    // words, and the non-scheduling telemetry fingerprint are pure
    // functions of the inputs, not of compile parallelism.
    Graph base_g = makeApp(0.5);
    Graph edit_g = makeApp(0.25);

    ScenarioOutcome a = runScenario(1, base_g, edit_g);
    ScenarioOutcome b = runScenario(4, base_g, edit_g);

    EXPECT_EQ(a.words, b.words);
    EXPECT_EQ(a.countersFp, b.countersFp);
    EXPECT_EQ(a.swap.outcome, b.swap.outcome);
    EXPECT_EQ(a.swap.cycles, b.swap.cycles);
    EXPECT_EQ(a.swap.packets, b.swap.packets);
    EXPECT_EQ(a.swap.retransmits, b.swap.retransmits);
    EXPECT_EQ(a.swap.crcErrors, b.swap.crcErrors);
    EXPECT_EQ(a.swap.rollbacks, b.swap.rollbacks);
}

TEST(SwapScenario, UnchangedOperatorComesFromCache)
{
    // Separate compilation at swap granularity: recompiling an
    // untouched operator is a pure cache hit, and a second request
    // for the edited one hits the entry the first request published.
    Graph base_g = makeApp(0.5);
    Graph edit_g = makeApp(0.25);
    PldCompiler pc(device(), opts(2));
    AppBuild build = pc.build(base_g, OptLevel::O1);

    SwapArtifact same = pc.buildSwapArtifact(edit_g, "head", build);
    EXPECT_FALSE(same.fnChanged);
    EXPECT_TRUE(same.fromCache);
    EXPECT_EQ(same.binding.pageId, build.bindings[0].pageId);

    SwapArtifact e1 = pc.buildSwapArtifact(edit_g, "tail", build);
    EXPECT_TRUE(e1.fnChanged);
    EXPECT_FALSE(e1.fromCache);
    SwapArtifact e2 = pc.buildSwapArtifact(edit_g, "tail", build);
    EXPECT_TRUE(e2.fromCache);
    EXPECT_EQ(e1.binding.imageBytes, e2.binding.imageBytes);
    EXPECT_EQ(e1.binding.imageHash, e2.binding.imageHash);
}
