/**
 * Parameterized network sweeps: flit conservation and per-stream
 * in-order delivery must hold for every topology size, port count,
 * FIFO depth, and traffic pattern.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/rng.h"
#include "noc/bft.h"

using namespace pld;
using namespace pld::noc;

namespace {

// (leaves, portsPerLeaf, fifoDepth, streams)
using Param = std::tuple<int, int, int, int>;

class NocSweep : public ::testing::TestWithParam<Param>
{
};

} // namespace

TEST_P(NocSweep, ConservationAndOrderUnderRandomTraffic)
{
    auto [leaves, ports, depth, streams] = GetParam();
    BftNoc noc(leaves, ports, static_cast<size_t>(depth));
    Rng rng(static_cast<uint64_t>(leaves) * 7919 + ports * 13 +
            depth * 7 + streams);

    // Build random point-to-point streams: distinct (src leaf, port)
    // -> (dst leaf, port) pairs.
    struct Stream
    {
        int src, sp, dst, dp;
        uint32_t next_send = 0;
        uint32_t next_expect = 0;
    };
    std::vector<Stream> ss;
    std::map<std::pair<int, int>, bool> src_used, dst_used;
    int guard = 0;
    while (static_cast<int>(ss.size()) < streams && guard++ < 1000) {
        Stream s;
        s.src = static_cast<int>(rng.below(noc.numLeaves()));
        s.sp = static_cast<int>(rng.below(ports));
        s.dst = static_cast<int>(rng.below(noc.numLeaves()));
        s.dp = static_cast<int>(rng.below(ports));
        if (s.src == s.dst)
            continue;
        if (src_used[{s.src, s.sp}] || dst_used[{s.dst, s.dp}])
            continue;
        src_used[{s.src, s.sp}] = true;
        dst_used[{s.dst, s.dp}] = true;
        noc.setRoute(s.src, s.sp, s.dst, s.dp);
        ss.push_back(s);
    }
    ASSERT_FALSE(ss.empty());

    const uint32_t kWords = 40;
    uint64_t received = 0;
    for (int cycle = 0; cycle < 200000; ++cycle) {
        for (auto &s : ss) {
            auto *out = noc.outPort(s.src, s.sp);
            if (s.next_send < kWords && out->canWrite())
                out->write((uint32_t(s.src) << 16) | s.next_send++);
            auto *in = noc.inPort(s.dst, s.dp);
            while (in->canRead()) {
                uint32_t w = in->read();
                EXPECT_EQ(w >> 16, static_cast<uint32_t>(s.src))
                    << "stream isolation";
                EXPECT_EQ(w & 0xFFFF, s.next_expect)
                    << "in-order per stream";
                ++s.next_expect;
                ++received;
            }
        }
        noc.stepCycle();
        if (received == ss.size() * kWords)
            break;
    }
    EXPECT_EQ(received, ss.size() * kWords)
        << "every flit delivered exactly once";
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, NocSweep,
    ::testing::Values(std::make_tuple(4, 2, 4, 2),
                      std::make_tuple(8, 4, 8, 4),
                      std::make_tuple(16, 4, 16, 8),
                      std::make_tuple(32, 6, 16, 12),
                      std::make_tuple(32, 6, 4, 20),
                      std::make_tuple(22, 6, 16, 10)),
    [](const ::testing::TestParamInfo<Param> &info) {
        // NB: no commas outside parens here — macro argument rules.
        return "L" + std::to_string(std::get<0>(info.param)) + "P" +
               std::to_string(std::get<1>(info.param)) + "D" +
               std::to_string(std::get<2>(info.param)) + "S" +
               std::to_string(std::get<3>(info.param));
    });
