#include <gtest/gtest.h>

#include "noc/bft.h"

using namespace pld;
using namespace pld::noc;

namespace {

/** Run cycles until the network drains or the limit hits. */
int
drain(BftNoc &noc, int limit = 10000)
{
    int cycles = 0;
    while (!noc.idle() && cycles < limit) {
        noc.stepCycle();
        ++cycles;
    }
    return cycles;
}

} // namespace

TEST(Bft, SingleFlitDelivery)
{
    BftNoc noc(8);
    noc.setRoute(0, 0, 5, 2);
    noc.outPort(0, 0)->write(0xCAFE);
    drain(noc);
    auto *in = noc.inPort(5, 2);
    ASSERT_TRUE(in->canRead());
    EXPECT_EQ(in->read(), 0xCAFEu);
    EXPECT_EQ(noc.stats().delivered, 1u);
}

TEST(Bft, OrderPreservedPerLink)
{
    BftNoc noc(8);
    noc.setRoute(1, 0, 6, 0);
    auto *out = noc.outPort(1, 0);
    for (uint32_t i = 0; i < 10; ++i)
        out->write(i);
    drain(noc);
    auto *in = noc.inPort(6, 0);
    for (uint32_t i = 0; i < 10; ++i) {
        ASSERT_TRUE(in->canRead());
        EXPECT_EQ(in->read(), i) << "in-order delivery";
    }
}

TEST(Bft, LatencyScalesWithTreeDistance)
{
    BftNoc noc(16);
    // Near: leaves 0 -> 1 share the bottom switch.
    noc.setRoute(0, 0, 1, 0);
    noc.outPort(0, 0)->write(1);
    int near_cycles = drain(noc);

    BftNoc noc2(16);
    // Far: 0 -> 15 crosses the root.
    noc2.setRoute(0, 0, 15, 0);
    noc2.outPort(0, 0)->write(1);
    int far_cycles = drain(noc2);

    EXPECT_GT(far_cycles, near_cycles);
}

TEST(Bft, ConfigPacketsProgramRoutes)
{
    BftNoc noc(8);
    // The linker at leaf 7 (DMA) programs leaf 2's port 1 to reach
    // leaf 4 port 3 — linking without recompilation (Sec 4.3).
    noc.sendConfig(7, 2, 1, 4, 3);
    drain(noc);
    EXPECT_EQ(noc.stats().configApplied, 1u);

    noc.outPort(2, 1)->write(77);
    drain(noc);
    auto *in = noc.inPort(4, 3);
    ASSERT_TRUE(in->canRead());
    EXPECT_EQ(in->read(), 77u);
}

TEST(Bft, RelinkingWithoutRecompile)
{
    BftNoc noc(8);
    noc.sendConfig(0, 1, 0, 2, 0);
    drain(noc);
    noc.outPort(1, 0)->write(10);
    drain(noc);
    EXPECT_TRUE(noc.inPort(2, 0)->canRead());

    // Re-link the same producer to a different consumer.
    noc.sendConfig(0, 1, 0, 3, 1);
    drain(noc);
    noc.outPort(1, 0)->write(20);
    drain(noc);
    auto *in3 = noc.inPort(3, 1);
    ASSERT_TRUE(in3->canRead());
    EXPECT_EQ(in3->read(), 20u);
}

TEST(Bft, ManyToOneContentionStillDelivers)
{
    BftNoc noc(16);
    const int senders = 8;
    for (int s = 0; s < senders; ++s) {
        noc.setRoute(s, 0, 15, 0);
        noc.outPort(s, 0)->write(static_cast<uint32_t>(100 + s));
    }
    drain(noc, 100000);
    uint64_t got = 0;
    auto *in = noc.inPort(15, 0);
    while (in->canRead()) {
        in->read();
        ++got;
    }
    EXPECT_EQ(got, static_cast<uint64_t>(senders));
}

TEST(Bft, DeflectionHappensUnderContention)
{
    BftNoc noc(16, 4, 256);
    // Heavy crossing traffic in both directions through the root.
    noc.setRoute(0, 0, 15, 0);
    noc.setRoute(1, 0, 14, 0);
    noc.setRoute(15, 0, 0, 0);
    noc.setRoute(14, 0, 1, 0);
    for (int i = 0; i < 64; ++i) {
        noc.outPort(0, 0)->write(i);
        noc.outPort(1, 0)->write(i);
        noc.outPort(15, 0)->write(i);
        noc.outPort(14, 0)->write(i);
    }
    drain(noc, 100000);
    EXPECT_EQ(noc.stats().delivered, 256u);
    EXPECT_GT(noc.stats().deflections, 0u)
        << "contended root must deflect";
}

TEST(Bft, FullInputFifoBackpressuresViaDeflection)
{
    BftNoc noc(8, 4, 4); // tiny FIFOs
    noc.setRoute(0, 0, 3, 0);
    auto *out = noc.outPort(0, 0);
    // Saturate: receiver never drains.
    int wrote = 0;
    for (int round = 0; round < 200; ++round) {
        if (out->canWrite()) {
            out->write(static_cast<uint32_t>(round));
            ++wrote;
        }
        noc.stepCycle();
    }
    // Only ~fifo_depth*2 words can be in flight/buffered; producer is
    // backpressured rather than losing data.
    EXPECT_LT(wrote, 200);
    int reachable = 0;
    auto *in = noc.inPort(3, 0);
    for (int i = 0; i < 20000 && !noc.idle(); ++i) {
        noc.stepCycle();
        while (in->canRead()) {
            in->read();
            ++reachable;
        }
    }
    while (in->canRead()) {
        in->read();
        ++reachable;
    }
    EXPECT_EQ(reachable, wrote) << "no flit lost";
}

TEST(Bft, SingleNetworkPortIsTheBottleneck)
{
    // The paper's -O1 slowdown mechanism: a leaf injects at most one
    // flit per cycle even with four ports of pending data.
    BftNoc noc(8, 4, 256);
    for (int p = 0; p < 4; ++p) {
        noc.setRoute(0, p, 5, p);
        for (int i = 0; i < 32; ++i)
            noc.outPort(0, p)->write(i);
    }
    int cycles = drain(noc, 100000);
    EXPECT_GE(cycles, 128) << "128 words through one injection port";
}

TEST(Bft, StatsHopAccounting)
{
    BftNoc noc(8);
    noc.setRoute(0, 0, 7, 0);
    noc.outPort(0, 0)->write(1);
    drain(noc);
    EXPECT_GT(noc.stats().totalHops, 2u);
}

TEST(Bft, NonPowerOfTwoLeavesRoundsUp)
{
    BftNoc noc(22); // the 22-page deployment
    EXPECT_EQ(noc.numLeaves(), 32);
    noc.setRoute(21, 0, 3, 0);
    noc.outPort(21, 0)->write(9);
    drain(noc);
    EXPECT_TRUE(noc.inPort(3, 0)->canRead());
}
