/**
 * Re-linking without recompilation (Sec 4.3): the linking network's
 * destination registers are set by config packets, so an operator's
 * consumers can be rewired at runtime — no place-and-route, no
 * bitstream, just "a few packets per page".
 *
 * The demo builds a one-producer, two-filter design, runs it through
 * filter A, then re-links the producer to filter B and runs again.
 */

#include <cstdio>

#include "ir/builder.h"
#include "noc/bft.h"
#include "interp/exec.h"

using namespace pld;
using namespace pld::ir;

namespace {

OperatorFn
makeMul(const std::string &name, int k, int n)
{
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, n, [&](Ex) {
        b.write(out, b.read(in).bitcast(Type::s(32)) * k);
    });
    return b.finish();
}

void
pump(noc::BftNoc &net, std::vector<interp::OperatorExec *> execs,
     int cycles)
{
    for (int c = 0; c < cycles; ++c) {
        for (auto *e : execs)
            if (!e->done())
                e->run(64);
        net.stepCycle();
    }
}

} // namespace

int
main()
{
    const int n = 4;
    noc::BftNoc net(8);

    // Producer on leaf 0, filter A (x10) on leaf 2, filter B (x100)
    // on leaf 5. Results drain to the host at leaf 7.
    OperatorFn src = makeMul("src", 1, 2 * n);
    OperatorFn fa = makeMul("filterA", 10, n);
    OperatorFn fb = makeMul("filterB", 100, n);

    interp::OperatorExec e_src(src, {net.inPort(0, 0),
                                     net.outPort(0, 1)});
    interp::OperatorExec e_a(fa, {net.inPort(2, 0),
                                  net.outPort(2, 1)});
    interp::OperatorExec e_b(fb, {net.inPort(5, 0),
                                  net.outPort(5, 1)});

    auto *host_in = net.outPort(7, 0);  // words we feed the producer
    auto *host_out = net.inPort(7, 1);  // results back to the host
    net.setRoute(7, 0, 0, 0);           // host -> src
    net.setRoute(2, 1, 7, 1);           // filterA -> host
    net.setRoute(5, 1, 7, 1);           // filterB -> host

    // Phase 1: link src -> filterA with a config packet.
    net.sendConfig(7, 0, 1, 2, 0);
    for (int i = 1; i <= n; ++i)
        host_in->write(static_cast<uint32_t>(i));
    pump(net, {&e_src, &e_a, &e_b}, 600);
    std::printf("linked src->filterA: ");
    while (host_out->canRead())
        std::printf("%u ", host_out->read());
    std::printf("(expected 10 20 30 40)\n");

    // Phase 2: re-link src -> filterB. No recompilation, no
    // bitstreams — one config packet.
    net.sendConfig(7, 0, 1, 5, 0);
    for (int i = 1; i <= n; ++i)
        host_in->write(static_cast<uint32_t>(i));
    pump(net, {&e_src, &e_a, &e_b}, 600);
    std::printf("re-linked src->filterB: ");
    while (host_out->canRead())
        std::printf("%u ", host_out->read());
    std::printf("(expected 100 200 300 400)\n");

    std::printf("\nconfig packets applied: %llu, data delivered: "
                "%llu flits\n",
                static_cast<unsigned long long>(
                    net.stats().configApplied),
                static_cast<unsigned long long>(
                    net.stats().delivered));
    return 0;
}
