/**
 * The edit-compile-debug loop (the paper's core developer story,
 * Sec 1): an engineer iterates on ONE operator of a six-operator
 * application. With separate compilation + the artifact cache, each
 * iteration recompiles only the edited operator; the linking network
 * reconnects everything with config packets in microseconds of
 * device time.
 *
 * The demo edits the paper's own optical-flow pipeline: first at -O0
 * (instant turnaround, prints enabled), then promotes the operator
 * to -O1 once it works.
 */

#include <cstdio>

#include "common/stopwatch.h"
#include "fabric/device.h"
#include "pld/compiler.h"
#include "rosetta/benchmark.h"
#include "sys/system.h"

using namespace pld;

int
main()
{
    rosetta::Benchmark bm = rosetta::makeOpticalFlow();
    fabric::Device dev = fabric::makeU50();
    flow::CompileOptions opts;
    opts.effort = 0.4;
    flow::PldCompiler pc(dev, opts);

    std::printf("== day 0: full -O1 build of %zu operators ==\n",
                bm.graph.ops.size());
    Stopwatch sw;
    auto build = pc.build(bm.graph, flow::OptLevel::O1);
    std::printf("full build: %.3f s wall (slowest page %.3f s)\n\n",
                sw.seconds(), build.wallTimes.total());

    // The engineer now iterates on flow_calc. Simulate three edits:
    // each changes the operator body (here: the loop bound nudges so
    // the content hash changes), and each rebuild should only
    // recompile flow_calc.
    int victim = bm.graph.findOp("flow_calc");
    for (int edit = 1; edit <= 3; ++edit) {
        bm.graph.ops[victim].fn.body.push_back(
            ir::makeStmt(ir::StmtKind::Block)); // a harmless edit
        sw.reset();
        auto inc = pc.build(bm.graph, flow::OptLevel::O1);
        int recompiled = 0;
        for (const auto &op : inc.ops)
            recompiled += op.fromCache ? 0 : 1;
        std::printf("edit %d: rebuild %.3f s — recompiled %d/%zu "
                    "operators (cache hits so far: %llu)\n",
                    edit, sw.seconds(), recompiled, inc.ops.size(),
                    static_cast<unsigned long long>(
                        pc.cacheStats().hits));
    }

    // Quick functional check on the final build.
    auto final_build = pc.build(bm.graph, flow::OptLevel::O1);
    sys::SystemSim sim(bm.graph, final_build.bindings,
                       final_build.sysCfg);
    sim.loadInput(0, bm.input);
    auto rs = sim.run();
    auto out = sim.takeOutput(0);
    std::printf("\nrun after edits: completed=%d, %zu/%zu output "
                "words correct\n",
                rs.completed, [&] {
                    size_t n = 0;
                    for (size_t i = 0; i < out.size(); ++i)
                        n += (out[i] == bm.expected[i]);
                    return n;
                }(),
                bm.expected.size());

    // Compare with what the monolithic flow would have cost per edit.
    sw.reset();
    pc.build(bm.graph, flow::OptLevel::O3);
    std::printf("for reference, one monolithic -O3 rebuild: %.3f s\n",
                sw.seconds());
    std::printf("\nthe paper's claim in miniature: the incremental "
                "page rebuild is the price of one operator, not of "
                "the whole design.\n");
    return 0;
}
