/**
 * Mixed -O0/-O1 mapping (paper Sec 6.2: "any combination of
 * operators, each independently mapped -O0 or -O1"): run the digit
 * recognizer with one systolic stage on its page softcore — the
 * steady-state debugging setup of Sec 7.4 — and watch its printf
 * output stream by, while the rest of the pipeline runs as hardware
 * pages at full speed.
 */

#include <cstdio>

#include "fabric/device.h"
#include "ir/builder.h"
#include "pld/compiler.h"
#include "rosetta/benchmark.h"
#include "sys/system.h"

using namespace pld;

int
main()
{
    rosetta::Benchmark bm = rosetta::makeDigitRec();
    fabric::Device dev = fabric::makeU50();
    flow::CompileOptions opts;
    opts.effort = 0.3;
    flow::PldCompiler pc(dev, opts);

    // All-hardware baseline.
    auto hw = pc.build(bm.graph, flow::OptLevel::O1);
    sys::SystemSim hw_sim(bm.graph, hw.bindings, hw.sysCfg);
    hw_sim.loadInput(0, bm.input);
    auto hw_rs = hw_sim.run();

    // Move knn2 to its softcore via the pragma (Fig 2a line 4:
    // "#pragma target=RISCV") — one line, no other source change.
    int victim = bm.graph.findOp("knn2");
    bm.graph.ops[victim].fn.pragma.target = ir::Target::RISCV;
    auto mixed = pc.build(bm.graph, flow::OptLevel::O1);
    sys::SystemSim mx_sim(bm.graph, mixed.bindings, mixed.sysCfg);
    mx_sim.loadInput(0, bm.input);
    auto mx_rs = mx_sim.run(20000000000ull);

    auto out = mx_sim.takeOutput(0);
    size_t correct = 0;
    for (size_t i = 0; i < out.size(); ++i)
        correct += (out[i] == bm.expected[i]);

    std::printf("digit recognition, %zu test digits\n",
                bm.expected.size());
    std::printf("  all -O1 (HW pages):        %llu cycles\n",
                static_cast<unsigned long long>(hw_rs.cycles));
    std::printf("  knn2 on softcore (-O0):    %llu cycles "
                "(%.1fx slower, still %zu/%zu correct)\n",
                static_cast<unsigned long long>(mx_rs.cycles),
                double(mx_rs.cycles) / double(hw_rs.cycles), correct,
                bm.expected.size());
    std::printf("\nfunctionality is mapping-independent: the "
                "latency-insensitive streams absorb the softcore's "
                "slowness (Sec 3.2).\n");
    return 0;
}
