# Smoke-test runner for the example binaries: the example must exit 0
# and its stdout must contain the expected substring. Invoked as
#   cmake -DEXE=<binary> -DEXPECT=<substring> -P run_example.cmake
execute_process(
    COMMAND "${EXE}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc
    TIMEOUT 300)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${EXE} exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()
string(FIND "${out}" "${EXPECT}" pos)
if(pos EQUAL -1)
    message(FATAL_ERROR "${EXE} stdout missing expected text '${EXPECT}'\nstdout:\n${out}")
endif()
