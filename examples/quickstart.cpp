/**
 * Quickstart: write one dataflow application once, compile it at
 * every PLD optimization level, and run it on the simulated Alveo
 * U50 — the 60-second tour of the whole system.
 *
 *   $ ./examples/quickstart
 *
 * The app is a two-operator pipeline (scale then offset) over
 * fixed-point samples, the moral equivalent of the paper's Fig 2
 * example at minimum size.
 */

#include <cstdio>

#include "common/table.h"
#include "fabric/device.h"
#include "ir/builder.h"
#include "pld/compiler.h"
#include "rosetta/benchmark.h"
#include "sys/system.h"

using namespace pld;
using namespace pld::ir;

namespace {

constexpr Type kFx = Type::fx(32, 17);
constexpr int kN = 64;

OperatorFn
makeScale()
{
    OpBuilder b("scale");
    auto in = b.input("Input_1");
    auto out = b.output("mid");
    auto x = b.var("x", kFx);
    b.pragma(Target::HW); // Fig 2(a): #pragma target=HW
    b.forLoop(0, kN, [&](Ex) {
        b.set(x, b.read(in).bitcast(kFx));
        b.print("scale saw a sample"); // -O0/debug only (Fig 2d)
        b.write(out, (Ex(x) * litF(1.5, kFx)).cast(kFx));
    });
    return b.finish();
}

OperatorFn
makeOffset()
{
    OpBuilder b("offset");
    auto in = b.input("mid");
    auto out = b.output("Output_1");
    auto x = b.var("x", kFx);
    b.pragma(Target::HW);
    b.forLoop(0, kN, [&](Ex) {
        b.set(x, b.read(in).bitcast(kFx));
        b.write(out, (Ex(x) + litF(-2.0, kFx)).cast(kFx));
    });
    return b.finish();
}

} // namespace

int
main()
{
    // 1. Describe the application: function composition over stream
    //    links (the paper's top.cpp, Fig 2b).
    GraphBuilder gb("quickstart");
    auto in = gb.extIn("Input_1");
    auto out = gb.extOut("Output_1");
    auto mid = gb.wire();
    gb.inst(makeScale(), {in}, {mid});
    gb.inst(makeOffset(), {mid}, {out});
    Graph app = gb.finish();

    // 2. A workload: 64 fixed-point samples.
    std::vector<uint32_t> inputs;
    for (int i = 0; i < kN; ++i)
        inputs.push_back(static_cast<uint32_t>(i << 15)); // i.0

    // 3. Compile at each level and run on the simulated U50.
    fabric::Device dev = fabric::makeU50();
    flow::PldCompiler pc(dev);

    Table t("quickstart: same source, four compile flows");
    t.addRow({"flow", "compile (s)", "Fmax", "run cycles",
              "first outputs"});
    for (auto lvl : {flow::OptLevel::O0, flow::OptLevel::O1,
                     flow::OptLevel::O3, flow::OptLevel::Vitis}) {
        auto build = pc.build(app, lvl);
        sys::SystemSim sim(app, build.bindings, build.sysCfg);
        sim.loadInput(0, inputs);
        auto rs = sim.run();
        auto words = sim.takeOutput(0);
        std::string first;
        for (int i = 0; i < 3; ++i) {
            double v = static_cast<double>(
                           static_cast<int32_t>(words[i])) /
                       32768.0;
            first += fmtDouble(v, 2) + " ";
        }
        t.row(flow::optLevelName(lvl),
              fmtDouble(build.wallTimes.total(), 4),
              fmtDouble(build.fmaxMHz, 0) + "MHz", rs.cycles, first);
    }
    t.print();
    std::printf("expected: y = 1.5*x - 2 -> -2.00 -0.50 1.00 ...\n");
    return 0;
}
