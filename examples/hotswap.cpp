/**
 * Live page hot-swap with the fault-tolerant runtime: the last step
 * of the paper's edit→recompile→hot-swap loop. One operator of the
 * optical-flow pipeline is recompiled into a swap artifact and its
 * page is reconfigured WHILE the rest of the system keeps its state —
 * no full relink, no restart of the other pages.
 *
 * The swap streams the partial image as CRC-framed config packets;
 * every fault-tolerance layer (per-packet CRC retransmit, watchdog,
 * rollback, quarantine-to-softcore) is live. Try it under injected
 * runtime faults:
 *
 *   PLD_FAULT=config_corrupt:flow_calc*2 ./hotswap
 *
 * and watch the retransmit counter absorb the corrupted packets —
 * the swap still lands and the outputs still match the golden model.
 */

#include <cstdio>

#include "fabric/device.h"
#include "pld/compiler.h"
#include "rosetta/benchmark.h"
#include "sys/system.h"

using namespace pld;

namespace {

bool
matches(const std::vector<uint32_t> &out,
        const std::vector<uint32_t> &expect)
{
    return out == expect;
}

} // namespace

int
main()
{
    rosetta::Benchmark bm = rosetta::makeOpticalFlow();
    fabric::Device dev = fabric::makeU50();
    flow::CompileOptions opts;
    opts.effort = 0.1;
    flow::PldCompiler pc(dev, opts);

    auto build = pc.build(bm.graph, flow::OptLevel::O1);
    std::printf("built %zu pages (-O1), overlay fmax %.0f MHz\n",
                build.ops.size(), build.fmaxMHz);

    sys::SystemSim sim(bm.graph, build.bindings, build.sysCfg);
    sim.loadInput(0, bm.input);
    auto rs1 = sim.run();
    bool ok1 = rs1.completed && matches(sim.takeOutput(0), bm.expected);
    std::printf("batch 1: %llu cycles, outputs %s\n",
                static_cast<unsigned long long>(rs1.cycles),
                ok1 ? "match golden" : "MISMATCH");

    // Recompile flow_calc for the page it already occupies and
    // package it for a live swap (cache hit — nothing changed; an
    // edited function would climb the retry ladder instead).
    flow::SwapArtifact sa =
        pc.buildSwapArtifact(bm.graph, "flow_calc", build);
    std::printf("swap artifact: image %llu bytes, %s, fallback "
                "softcore attached\n",
                static_cast<unsigned long long>(
                    sa.binding.imageBytes),
                sa.fromCache ? "from cache" : "recompiled");

    // Hot-swap it. With PLD_FAULT set, config packets get dropped or
    // corrupted in flight and the runtime retransmits / rolls back.
    sys::SwapResult r = sim.swapPage(
        sa.binding.pageId, sa.binding,
        sa.fnChanged ? &sa.fn : nullptr);
    std::printf("hot-swap flow_calc: outcome=%s packets=%llu "
                "retransmits=%llu crc_errors=%llu drops=%llu "
                "rollbacks=%d attempts=%d watchdog=%d\n",
                sys::swapOutcomeName(r.outcome),
                static_cast<unsigned long long>(r.packets),
                static_cast<unsigned long long>(r.retransmits),
                static_cast<unsigned long long>(r.crcErrors),
                static_cast<unsigned long long>(r.drops),
                r.rollbacks, r.attempts, r.watchdogFired ? 1 : 0);

    // The swapped system keeps computing the same function.
    sim.loadInput(0, bm.input);
    auto rs2 = sim.run();
    bool ok2 = rs2.completed && matches(sim.takeOutput(0), bm.expected);
    std::printf("batch 2 (after swap): %llu cycles, outputs %s\n",
                static_cast<unsigned long long>(rs2.cycles),
                ok2 ? "match golden" : "MISMATCH");

    std::printf("\nreconfiguration is a runtime event, not a "
                "recompile: the other %zu pages never stopped.\n",
                build.ops.size() - 1);
    return ok1 && ok2 &&
                   (r.outcome == sys::SwapOutcome::Swapped ||
                    r.outcome == sys::SwapOutcome::Quarantined)
               ? 0
               : 1;
}
