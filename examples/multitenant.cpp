/**
 * Multi-tenant fabric: four independently compiled apps time-share
 * one 4-page grid (half their combined footprint), scheduled by
 * deficit round-robin over page-cycles. One tenant is hostile — its
 * fault plan corrupts its own config streams and hangs its own pages
 * after every swap — and the scheduler contains it: retransmit,
 * rollback, quarantine onto the softcore fallback, all charged to
 * the hostile tenant's budget, while every neighbour's outputs stay
 * word-for-word correct.
 *
 * The fault plan is attached to EVERY tenant's config; tenant-scoped
 * fault sites ("hostile/op") mean only the tenant it names ever
 * sees a fault — the isolation is in the addressing, not in luck.
 */

#include <cstdio>

#include "dataflow/runtime.h"
#include "fabric/device.h"
#include "ir/builder.h"
#include "pld/compiler.h"
#include "sys/tenancy.h"

using namespace pld;
using namespace pld::ir;

namespace {

OperatorFn
makeAdd(const std::string &name, int k, int n)
{
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, n, [&](Ex) {
        b.write(out, b.read(in).bitcast(Type::s(32)) + k);
    });
    return b.finish();
}

Graph
makeApp(const std::string &prefix, int k, int n)
{
    GraphBuilder gb(prefix);
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto mid = gb.wire();
    gb.inst(makeAdd(prefix + "_a", k, n), {in}, {mid});
    gb.inst(makeAdd(prefix + "_b", 2 * k, n), {mid}, {out});
    return gb.finish();
}

std::vector<uint32_t>
iota(int n, uint32_t base)
{
    std::vector<uint32_t> v;
    for (int i = 0; i < n; ++i)
        v.push_back(base + static_cast<uint32_t>(i));
    return v;
}

} // namespace

int
main()
{
    const int n = 64;
    const int kBatches = 3;
    fabric::Device dev = fabric::makeU50();
    flow::CompileOptions opts;
    opts.effort = 0.1;
    flow::PldCompiler pc(dev, opts);

    // Four apps, compiled independently (each gets the whole grid's
    // numbering — page addresses are virtual under the scheduler).
    const char *names[] = {"t0", "t1", "hostile", "t3"};
    std::vector<Graph> graphs;
    graphs.reserve(4);
    for (int t = 0; t < 4; ++t)
        graphs.push_back(makeApp(names[t], t + 1, n));
    std::vector<flow::AppBuild> builds;
    builds.reserve(4);
    std::vector<flow::TenantAppRef> refs;
    for (int t = 0; t < 4; ++t)
        builds.push_back(pc.build(graphs[t], flow::OptLevel::O1));
    for (int t = 0; t < 4; ++t)
        refs.push_back({names[t], &graphs[t], &builds[t]});
    flow::TenantPack pack = pc.packTenantApps(refs);
    std::printf("packed %zu tenants: %d pages total on a 4-page "
                "grid\n",
                pack.specs.size(), pack.totalPages);

    // Same fault plan everywhere; only "hostile/..." sites exist.
    FaultPlan plan = FaultPlan::parse(
        "config_corrupt:hostile/hostile_a*2;"
        "page_hang:hostile/hostile_b");
    for (auto &spec : pack.specs)
        spec.sysCfg.faults = plan;

    sys::TenantLimits lim;
    lim.fabricPages = 4;
    lim.sliceCycles = 400;
    lim.drrQuantum = 1600;
    lim.hangSliceLimit = 12; // hostile swaps are slow, not hung
    sys::TenantScheduler sched(lim);
    std::vector<int> ids;
    for (auto &spec : pack.specs) {
        auto r = sched.admit(spec);
        if (!r.accepted) {
            std::printf("admit %s failed: %s\n", spec.name.c_str(),
                        r.diag.detail.c_str());
            return 1;
        }
        ids.push_back(r.tenantId);
    }
    for (int t = 0; t < 4; ++t)
        for (int b = 0; b < kBatches; ++b)
            sched.submit(ids[static_cast<size_t>(t)],
                         {iota(n, static_cast<uint32_t>(
                                      100 * t + 10 * b))});

    // Mid-run hot swap on the hostile tenant's second page: its own
    // page_hang fault watchdogs both attempts, so the swap engine
    // rolls back and quarantines the page onto its softcore
    // fallback — the tenant keeps computing, just slower.
    flow::SwapArtifact sa = pc.buildSwapArtifact(
        graphs[2], "hostile_b", builds[2]);
    sched.requestTenantSwap(ids[2], sa.binding.pageId, sa.binding,
                            sa.fnChanged ? &sa.fn : nullptr);

    sys::SchedStats ss = sched.run();
    std::printf("run: %llu rounds, %llu slices, %llu fabric "
                "cycles, %llu evictions, Jain fairness %.3f\n",
                static_cast<unsigned long long>(ss.rounds),
                static_cast<unsigned long long>(ss.slices),
                static_cast<unsigned long long>(ss.virtualCycles),
                static_cast<unsigned long long>(ss.evictions),
                ss.jainFairness);

    int correct = 0;
    for (int t = 0; t < 4; ++t) {
        auto out = sched.takeOutput(ids[static_cast<size_t>(t)]);
        bool ok = out.size() == static_cast<size_t>(kBatches);
        for (int b = 0; ok && b < kBatches; ++b) {
            dataflow::GraphRuntime gold(
                graphs[static_cast<size_t>(t)]);
            gold.pushInput(0, iota(n, static_cast<uint32_t>(
                                          100 * t + 10 * b)));
            ok = gold.run() &&
                 out[static_cast<size_t>(b)].streams[0] ==
                     gold.takeOutput(0);
        }
        correct += ok;
        auto st = sched.tenantStats(ids[static_cast<size_t>(t)]);
        std::printf("  %-8s batches=%llu latency p50=%llu p95=%llu "
                    "pageCycles=%llu rollbacks=%llu quarantines=%llu"
                    " %s\n",
                    names[t],
                    static_cast<unsigned long long>(st.batchesDone),
                    static_cast<unsigned long long>(st.latencyP50),
                    static_cast<unsigned long long>(st.latencyP95),
                    static_cast<unsigned long long>(
                        st.servedPageCycles),
                    static_cast<unsigned long long>(st.rollbacks),
                    static_cast<unsigned long long>(
                        st.quarantinedPages),
                    ok ? "outputs match golden" : "MISMATCH");
    }

    if (correct == 4)
        std::printf("multi-tenant fabric: 4 tenants time-shared, "
                    "hostile contained, all outputs match golden\n");
    return correct == 4 ? 0 : 1;
}
